// Package sensitivity implements the sensitivity-analysis techniques of the
// paper's Section IV-C: One-at-a-time (OAT), "a simple and common approach
// that consists in varying a single parameter at a time to identify the
// effect on the output", plus Morris elementary-effects screening as a
// global alternative.
package sensitivity

import (
	"fmt"
	"math"
	"sort"

	"e2clab/internal/rngutil"
	"e2clab/internal/space"
	"e2clab/internal/stats"
)

// OATPoint is one evaluation of an OAT sweep.
type OATPoint struct {
	// Value is the swept parameter's value.
	Value float64
	// X is the full configuration evaluated.
	X []float64
	// Y is the objective at X.
	Y float64
}

// OATResult is the sweep of one parameter around a center configuration.
type OATResult struct {
	Dimension string
	Center    []float64
	Points    []OATPoint
}

// Best returns the sweep's best (minimum) point.
func (r *OATResult) Best() OATPoint {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.Y < best.Y {
			best = p
		}
	}
	return best
}

// Range returns max(Y) - min(Y): the parameter's OAT effect size.
func (r *OATResult) Range() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range r.Points {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	return hi - lo
}

// OAT sweeps dimension dim of s over center ± delta (clipped to bounds),
// evaluating fn at each setting while all other parameters stay at the
// center — exactly the paper's extract ±2 / simsearch ±3 protocol.
func OAT(s *space.Space, center []float64, dim string, delta int, fn func(x []float64) float64) (*OATResult, error) {
	di := s.IndexOf(dim)
	if di < 0 {
		return nil, fmt.Errorf("sensitivity: unknown dimension %q", dim)
	}
	if !s.Contains(center) {
		return nil, fmt.Errorf("sensitivity: center %v outside the space", center)
	}
	if delta < 1 {
		return nil, fmt.Errorf("sensitivity: delta must be >= 1, got %d", delta)
	}
	d := s.Dim(di)
	res := &OATResult{Dimension: dim, Center: append([]float64(nil), center...)}
	seen := map[float64]bool{}
	for off := -delta; off <= delta; off++ {
		v := d.Clip(center[di] + float64(off))
		if seen[v] {
			continue // clipped duplicates at the bounds
		}
		seen[v] = true
		x := append([]float64(nil), center...)
		x[di] = v
		res.Points = append(res.Points, OATPoint{Value: v, X: x, Y: fn(x)})
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].Value < res.Points[j].Value })
	return res, nil
}

// Refine runs OAT sweeps over several dimensions sequentially, adopting
// each sweep's best value before sweeping the next — the paper's refinement
// of the preliminary optimum into the refined optimum.
func Refine(s *space.Space, center []float64, dims []string, delta int, fn func(x []float64) float64) ([]float64, []*OATResult, error) {
	cur := append([]float64(nil), center...)
	var sweeps []*OATResult
	for _, dim := range dims {
		r, err := OAT(s, cur, dim, delta, fn)
		if err != nil {
			return nil, nil, err
		}
		sweeps = append(sweeps, r)
		best := r.Best()
		cur = append([]float64(nil), best.X...)
	}
	return cur, sweeps, nil
}

// MorrisResult holds the elementary-effect statistics of one dimension.
type MorrisResult struct {
	Dimension string
	// Mu is the mean elementary effect (signed).
	Mu float64
	// MuStar is the mean absolute elementary effect (overall influence).
	MuStar float64
	// Sigma is the effects' standard deviation (interaction/nonlinearity).
	Sigma float64
}

// Morris runs the Morris elementary-effects screening method with r
// trajectories over a p-level grid, returning one result per dimension
// sorted by descending MuStar.
func Morris(s *space.Space, r, levels int, seed int64, fn func(x []float64) float64) ([]MorrisResult, error) {
	if r < 2 {
		return nil, fmt.Errorf("sensitivity: Morris needs >= 2 trajectories, got %d", r)
	}
	if levels < 2 {
		levels = 4
	}
	d := s.Len()
	rng := rngutil.New(seed)
	delta := float64(levels) / (2 * float64(levels-1)) // standard Morris step
	effects := make([]stats.Welford, d)
	absEffects := make([]stats.Welford, d)
	for t := 0; t < r; t++ {
		// Random grid start that can accommodate +delta in every dim.
		u := make([]float64, d)
		for j := range u {
			u[j] = float64(rng.Intn(levels/2)) / float64(levels-1)
		}
		y := fn(s.FromUnit(u))
		// Random dimension order.
		for _, j := range rng.Perm(d) {
			u2 := append([]float64(nil), u...)
			u2[j] += delta
			if u2[j] > 1 {
				u2[j] -= 2 * delta
			}
			y2 := fn(s.FromUnit(u2))
			ee := (y2 - y) / delta
			if u2[j] < u[j] {
				ee = -ee
			}
			effects[j].Add(ee)
			absEffects[j].Add(math.Abs(ee))
			u, y = u2, y2
		}
	}
	out := make([]MorrisResult, d)
	for j := 0; j < d; j++ {
		out[j] = MorrisResult{
			Dimension: s.Dim(j).Name,
			Mu:        effects[j].Mean(),
			MuStar:    absEffects[j].Mean(),
			Sigma:     effects[j].StdDev(),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MuStar > out[j].MuStar })
	return out, nil
}
