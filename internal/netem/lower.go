package netem

import (
	"math/rand"

	"e2clab/internal/sim"
)

// LinkSpec is the compiled, simulation-ready form of the effective rule in
// one direction of one hop: what Network.Between answers for (src, dst),
// converted to the units sim.Link consumes. It is the bridge between the
// declarative netem layer (tc/netem-style rules over continuum layers) and
// the discrete-event kernel: lowering a scenario to LinkSpecs and building
// them makes the network a first-class simulated component — gateway
// uplinks queue under load — instead of the closed-form TransferSeconds
// constant.
type LinkSpec struct {
	Src, Dst string
	DelaySec float64
	RateBps  float64 // 0 = unlimited
	LossPct  float64
}

// IsZero reports whether the spec imposes no constraint at all (an
// unconstrained hop can be elided from a simulated path: it contributes
// exactly zero transfer time, as TransferSeconds prices it).
func (ls LinkSpec) IsZero() bool {
	return ls.DelaySec == 0 && ls.RateBps == 0 && ls.LossPct == 0
}

// TransferSeconds prices one payload through the spec in closed form —
// identical to Network.TransferSeconds on the rule the spec was lowered
// from. Simulated links converge to this figure under zero contention.
func (ls LinkSpec) TransferSeconds(payloadBytes float64) float64 {
	return transferSeconds(ls.DelaySec, ls.RateBps, ls.LossPct, payloadBytes)
}

// Build instantiates the spec as a sim.Link on the engine. The rng drives
// the link's loss retransmission draws and may be shared across the links
// of one single-threaded engine.
func (ls LinkSpec) Build(eng *sim.Engine, rng *rand.Rand) *sim.Link {
	return sim.NewLink(eng, ls.DelaySec, ls.RateBps, ls.LossPct, rng)
}

// Lower compiles the effective constraint from src to dst (rule
// composition per Between: delays and losses add, lowest rate wins) into a
// simulation-ready LinkSpec.
func (n *Network) Lower(src, dst string) LinkSpec {
	r := n.Between(src, dst)
	spec := LinkSpec{Src: src, Dst: dst, DelaySec: r.DelayMS / 1000, RateBps: r.RateGbps * 1e9, LossPct: r.LossPct}
	if spec.LossPct < 0 {
		spec.LossPct = 0
	}
	if spec.LossPct > 100 {
		spec.LossPct = 100
	}
	return spec
}
