package netem

import (
	"math"
	"testing"
)

func TestBetweenDirectional(t *testing.T) {
	n := New(Rule{Src: "edge", Dst: "cloud", DelayMS: 50, RateGbps: 10})
	r := n.Between("edge", "cloud")
	if r.DelayMS != 50 || r.RateGbps != 10 {
		t.Errorf("rule = %+v", r)
	}
	back := n.Between("cloud", "edge")
	if back.DelayMS != 0 {
		t.Errorf("directional rule applied backwards: %+v", back)
	}
}

func TestBetweenSymmetric(t *testing.T) {
	n := New(Rule{Src: "edge", Dst: "cloud", DelayMS: 20, Symmetric: true})
	if n.Between("cloud", "edge").DelayMS != 20 {
		t.Error("symmetric rule not applied in reverse")
	}
	if got := n.RTTSeconds("edge", "cloud"); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("RTT = %v, want 0.04", got)
	}
}

func TestRuleComposition(t *testing.T) {
	n := New(
		Rule{Src: "edge", Dst: "cloud", DelayMS: 10, RateGbps: 10},
		Rule{Src: "edge", Dst: "cloud", DelayMS: 5, RateGbps: 1},
	)
	r := n.Between("edge", "cloud")
	if r.DelayMS != 15 {
		t.Errorf("delays should add: %v", r.DelayMS)
	}
	if r.RateGbps != 1 {
		t.Errorf("lowest rate should win: %v", r.RateGbps)
	}
}

func TestLossComposition(t *testing.T) {
	n := New(
		Rule{Src: "a", Dst: "b", LossPct: 10},
		Rule{Src: "a", Dst: "b", LossPct: 10},
	)
	r := n.Between("a", "b")
	// 1 - 0.9*0.9 = 19%
	if math.Abs(r.LossPct-19) > 1e-9 {
		t.Errorf("LossPct = %v, want 19", r.LossPct)
	}
}

func TestTransferSeconds(t *testing.T) {
	n := New(Rule{Src: "edge", Dst: "cloud", DelayMS: 100, RateGbps: 0.001}) // 1 Mbit/s
	// 1 MB at 1 Mbit/s = 8 s serialization + 0.1 s delay.
	got := n.TransferSeconds("edge", "cloud", 1e6)
	if math.Abs(got-8.1) > 1e-9 {
		t.Errorf("TransferSeconds = %v, want 8.1", got)
	}
}

func TestTransferWithLoss(t *testing.T) {
	n := New(Rule{Src: "a", Dst: "b", DelayMS: 100, LossPct: 50})
	if got := n.TransferSeconds("a", "b", 0); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("lossy transfer = %v, want 0.2 (doubled)", got)
	}
}

func TestTransferFullyLossy(t *testing.T) {
	// A single 100%-loss rule: nothing ever gets through, so the expected
	// transfer time is +Inf, not a finite (delay-only) value.
	n := New(Rule{Src: "a", Dst: "b", DelayMS: 100, LossPct: 100})
	if got := n.TransferSeconds("a", "b", 1e6); !math.IsInf(got, 1) {
		t.Errorf("fully lossy transfer = %v, want +Inf", got)
	}

	// Composed rules reaching 100%: Validate accepts each rule, Between
	// composes losses to exactly 100, and the transfer must still be +Inf.
	comp := New(
		Rule{Src: "edge", Dst: "cloud", DelayMS: 10, LossPct: 60},
		Rule{Src: "edge", Dst: "cloud", DelayMS: 5, LossPct: 100},
	)
	if err := comp.Validate([]string{"edge", "cloud"}); err != nil {
		t.Fatalf("Validate rejected composable rules: %v", err)
	}
	if got := comp.Between("edge", "cloud").LossPct; got != 100 {
		t.Fatalf("composed LossPct = %v, want 100", got)
	}
	if got := comp.TransferSeconds("edge", "cloud", 1e6); !math.IsInf(got, 1) {
		t.Errorf("composed fully lossy transfer = %v, want +Inf", got)
	}
}

func TestTransferUnconstrained(t *testing.T) {
	n := New()
	if got := n.TransferSeconds("x", "y", 1e9); got != 0 {
		t.Errorf("unconstrained transfer = %v, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	n := New(Rule{Src: "edge", Dst: "cloud", DelayMS: 10})
	if err := n.Validate([]string{"edge", "cloud"}); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	if err := n.Validate([]string{"edge"}); err == nil {
		t.Error("unknown dst layer accepted")
	}
	bad := New(Rule{Src: "a", Dst: "b", LossPct: 150})
	if err := bad.Validate([]string{"a", "b"}); err == nil {
		t.Error("loss > 100% accepted")
	}
	neg := New(Rule{Src: "a", Dst: "b", DelayMS: -1})
	if err := neg.Validate([]string{"a", "b"}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestRulesCopy(t *testing.T) {
	n := New(Rule{Src: "a", Dst: "b", DelayMS: 1})
	rs := n.Rules()
	rs[0].DelayMS = 99
	if n.Between("a", "b").DelayMS != 1 {
		t.Error("Rules leaked internal slice")
	}
}
