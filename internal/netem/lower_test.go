package netem

import (
	"math"
	"math/rand"
	"testing"

	"e2clab/internal/sim"
)

func TestLowerComposesLikeBetween(t *testing.T) {
	n := New(
		Rule{Src: "edge", Dst: "fog", DelayMS: 20, RateGbps: 1, LossPct: 10, Symmetric: true},
		Rule{Src: "edge", Dst: "fog", DelayMS: 5, RateGbps: 0.5, LossPct: 10},
	)
	ls := n.Lower("edge", "fog")
	if ls.Src != "edge" || ls.Dst != "fog" {
		t.Errorf("spec endpoints = %s->%s", ls.Src, ls.Dst)
	}
	if math.Abs(ls.DelaySec-0.025) > 1e-12 {
		t.Errorf("DelaySec = %v, want 0.025", ls.DelaySec)
	}
	if ls.RateBps != 0.5e9 {
		t.Errorf("RateBps = %v, want 5e8 (lowest non-zero rate wins)", ls.RateBps)
	}
	if math.Abs(ls.LossPct-19) > 1e-9 { // 1 - 0.9*0.9
		t.Errorf("LossPct = %v, want 19 (losses compose)", ls.LossPct)
	}
	// Reverse direction only sees the symmetric rule.
	back := n.Lower("fog", "edge")
	if back.DelaySec != 0.020 || back.RateBps != 1e9 {
		t.Errorf("reverse spec = %+v", back)
	}
	// The compiled spec prices a payload exactly like the Network it came
	// from — the equivalence the simulated mode's zero-contention contract
	// rests on.
	for _, payload := range []float64{0, 5e4, 1.2e6} {
		if a, b := ls.TransferSeconds(payload), n.TransferSeconds("edge", "fog", payload); math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("payload %v: spec prices %v, network %v", payload, a, b)
		}
	}
}

func TestLowerZeroAndLossySpecs(t *testing.T) {
	n := New(
		Rule{Src: "edge", Dst: "fog", DelayMS: 2, RateGbps: 10, Symmetric: true},
		Rule{Src: "fog", Dst: "cloud", DelayMS: 9},
	)
	// cloud->fog has no rule: a zero spec, eligible for elision.
	if !n.Lower("cloud", "fog").IsZero() {
		t.Errorf("cloud->fog spec not zero: %+v", n.Lower("cloud", "fog"))
	}
	if n.Lower("edge", "fog").IsZero() || n.Lower("fog", "cloud").IsZero() {
		t.Error("constrained hops reported zero")
	}
	if ls := (LinkSpec{LossPct: 100}); !math.IsInf(ls.TransferSeconds(1), 1) {
		t.Error("fully lossy spec not priced +Inf")
	}
}

// TestLoweredLinkMatchesClosedForm: a built link delivers a solo payload in
// exactly the closed-form time the rule prices (zero loss), closing the
// loop between the declarative netem layer and the event kernel.
func TestLoweredLinkMatchesClosedForm(t *testing.T) {
	n := New(Rule{Src: "edge", Dst: "fog", DelayMS: 30, RateGbps: 0.05})
	eng := sim.NewEngine()
	l := n.Lower("edge", "fog").Build(eng, rand.New(rand.NewSource(1)))
	var done float64 = -1
	l.Transfer(1.2e6, func() { done = eng.Now() })
	eng.Run(1000)
	want := n.TransferSeconds("edge", "fog", 1.2e6)
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("simulated delivery %v, closed form %v", done, want)
	}
}
