// Package netem models E2Clab's network manager: user-defined communication
// constraints (latency, bandwidth, loss) between scenario layers, the way
// the real framework applies tc/netem rules between Edge, Fog, and Cloud
// machines ("network emulation to define Edge-to-Cloud communication
// constraints").
package netem

import (
	"fmt"
	"math"
)

// Rule constrains traffic from layer Src to layer Dst.
type Rule struct {
	Src, Dst string
	// DelayMS is the one-way added latency in milliseconds.
	DelayMS float64
	// RateGbps is the bandwidth cap in Gbit/s (0 = unlimited).
	RateGbps float64
	// LossPct is the packet-loss percentage.
	LossPct float64
	// Symmetric applies the rule in both directions.
	Symmetric bool
}

// Network is a set of rules over named layers.
type Network struct {
	rules []Rule
}

// New builds a network from rules.
func New(rules ...Rule) *Network { return &Network{rules: append([]Rule(nil), rules...)} }

// Validate checks that every rule references known layers and has sane
// parameters.
func (n *Network) Validate(layers []string) error {
	known := make(map[string]bool, len(layers))
	for _, l := range layers {
		known[l] = true
	}
	for i, r := range n.rules {
		if !known[r.Src] {
			return fmt.Errorf("netem: rule %d references unknown src layer %q", i, r.Src)
		}
		if !known[r.Dst] {
			return fmt.Errorf("netem: rule %d references unknown dst layer %q", i, r.Dst)
		}
		if r.DelayMS < 0 || r.LossPct < 0 || r.LossPct > 100 || r.RateGbps < 0 {
			return fmt.Errorf("netem: rule %d has invalid parameters %+v", i, r)
		}
	}
	return nil
}

// Between returns the effective rule from src to dst. Unmatched pairs get a
// zero Rule (no constraint). When several rules match, constraints compose:
// delays and losses add, the lowest non-zero rate wins.
func (n *Network) Between(src, dst string) Rule {
	out := Rule{Src: src, Dst: dst}
	for _, r := range n.rules {
		if (r.Src == src && r.Dst == dst) || (r.Symmetric && r.Src == dst && r.Dst == src) {
			out.DelayMS += r.DelayMS
			out.LossPct = 100 - (100-out.LossPct)*(100-r.LossPct)/100
			if r.RateGbps > 0 && (out.RateGbps == 0 || r.RateGbps < out.RateGbps) {
				out.RateGbps = r.RateGbps
			}
		}
	}
	return out
}

// TransferSeconds returns the expected time to move payloadBytes from src
// to dst: one-way delay plus serialization at the bandwidth cap, inflated
// by retransmissions at the loss rate. A fully lossy path (100% loss,
// possibly reached by composing Between rules) delivers nothing, so the
// expected transfer time is +Inf.
func (n *Network) TransferSeconds(src, dst string, payloadBytes float64) float64 {
	r := n.Between(src, dst)
	return transferSeconds(r.DelayMS/1000, r.RateGbps*1e9, r.LossPct, payloadBytes)
}

// transferSeconds is the closed-form expected transfer time shared by
// Network.TransferSeconds and LinkSpec.TransferSeconds: one-way delay plus
// serialization, inflated by geometric retransmission at the loss rate.
func transferSeconds(delaySec, rateBps, lossPct, payloadBytes float64) float64 {
	if lossPct >= 100 {
		return math.Inf(1)
	}
	t := delaySec
	if rateBps > 0 {
		t += payloadBytes * 8 / rateBps
	}
	if lossPct > 0 {
		t /= 1 - lossPct/100
	}
	if math.IsNaN(t) || t < 0 {
		return 0
	}
	return t
}

// RTTSeconds returns the round-trip delay between two layers.
func (n *Network) RTTSeconds(a, b string) float64 {
	return n.Between(a, b).DelayMS/1000 + n.Between(b, a).DelayMS/1000
}

// Rules returns a copy of the rule set (for the provenance archive).
func (n *Network) Rules() []Rule { return append([]Rule(nil), n.rules...) }
