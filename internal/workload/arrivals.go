package workload

import "fmt"

// RatePhase is one piecewise-constant segment of a time-varying arrival
// process: requests arrive at Rate req/s for DurationSeconds.
type RatePhase struct {
	Rate            float64 `json:"rate"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// PiecewiseRate is a piecewise-constant arrival-rate profile λ(t) — the
// open-loop form of the bursty/diurnal workload shapes. Where a phased
// closed-loop lowering restarts the engine between phases (queue state
// lost at every boundary), a PiecewiseRate drives ONE engine run as a
// nonhomogeneous Poisson process realized by Lewis-Shedler thinning:
// candidate arrivals are generated at the max rate and accepted with
// probability λ(t)/λmax, so backlog built during a burst drains into the
// next phase exactly as it would in production.
type PiecewiseRate struct {
	Phases []RatePhase `json:"phases"`
}

// Validate rejects empty, negative, and never-arriving profiles.
func (p *PiecewiseRate) Validate() error {
	if p == nil || len(p.Phases) == 0 {
		return fmt.Errorf("workload: piecewise rate has no phases")
	}
	max := 0.0
	for i, ph := range p.Phases {
		if ph.Rate < 0 || ph.Rate != ph.Rate {
			return fmt.Errorf("workload: phase %d has rate %v", i, ph.Rate)
		}
		if ph.DurationSeconds <= 0 {
			return fmt.Errorf("workload: phase %d has duration %v", i, ph.DurationSeconds)
		}
		if ph.Rate > max {
			max = ph.Rate
		}
	}
	if max <= 0 {
		return fmt.Errorf("workload: piecewise rate is zero everywhere")
	}
	return nil
}

// Max returns λmax, the thinning envelope rate.
func (p *PiecewiseRate) Max() float64 {
	max := 0.0
	for _, ph := range p.Phases {
		if ph.Rate > max {
			max = ph.Rate
		}
	}
	return max
}

// TotalDuration sums the phase durations.
func (p *PiecewiseRate) TotalDuration() float64 {
	var d float64
	for _, ph := range p.Phases {
		d += ph.DurationSeconds
	}
	return d
}

// At returns λ(t). Before zero it is the first phase's rate; beyond the
// profile it is the last phase's rate (a run slightly longer than the
// profile keeps the final plateau instead of silently going quiet).
func (p *PiecewiseRate) At(t float64) float64 {
	if len(p.Phases) == 0 {
		return 0
	}
	for _, ph := range p.Phases {
		if t < ph.DurationSeconds {
			return ph.Rate
		}
		t -= ph.DurationSeconds
	}
	return p.Phases[len(p.Phases)-1].Rate
}

// MeanRate returns the duration-weighted average rate — the throughput a
// stable system serving the profile converges to.
func (p *PiecewiseRate) MeanRate() float64 {
	total := p.TotalDuration()
	if total <= 0 {
		return 0
	}
	var s float64
	for _, ph := range p.Phases {
		s += ph.Rate * ph.DurationSeconds
	}
	return s / total
}
