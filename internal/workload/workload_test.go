package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestPaperWorkloads(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 3 {
		t.Fatalf("want 3 workload categories, got %d", len(ws))
	}
	wantN := []int{80, 120, 140}
	for i, w := range ws {
		if w.SimultaneousRequests != wantN[i] {
			t.Errorf("workload %d = %d requests, want %d", i, w.SimultaneousRequests, wantN[i])
		}
		if w.DurationSeconds != 1380 {
			t.Errorf("duration = %v, want 1380 (23 min)", w.DurationSeconds)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("paper workload invalid: %v", err)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{SimultaneousRequests: 0, DurationSeconds: 10}).Validate(); err == nil {
		t.Error("zero population accepted")
	}
	if err := (Spec{SimultaneousRequests: 10}).Validate(); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestGrowthTraceShape(t *testing.T) {
	trace := DefaultGrowthModel().Generate()
	if len(trace) != 7*52 {
		t.Fatalf("trace length %d, want %d", len(trace), 7*52)
	}
	// Figure 2's defining property: every year peaks in May-June
	// (weeks ~17-26) and year totals grow.
	prevTotal := 0.0
	for y := 2015; y <= 2021; y++ {
		week, users := PeakWeek(trace, y)
		if week < 17 || week > 26 {
			t.Errorf("year %d peaks at week %d, want May-June (17-26)", y, week)
		}
		if users <= 0 {
			t.Errorf("year %d has nonpositive peak", y)
		}
		total := YearTotal(trace, y)
		if total <= prevTotal {
			t.Errorf("year %d total %.0f did not grow over %.0f", y, total, prevTotal)
		}
		prevTotal = total
	}
}

func TestGrowthPeakDominatesOffSeason(t *testing.T) {
	trace := DefaultGrowthModel().Generate()
	_, peak := PeakWeek(trace, 2020)
	// Off-season: week 45.
	var offSeason float64
	for _, p := range trace {
		if p.Year == 2020 && p.Week == 45 {
			offSeason = p.NewUsers
		}
	}
	if peak < 3*offSeason {
		t.Errorf("peak %.0f not >> off-season %.0f", peak, offSeason)
	}
}

func TestGrowthDeterministic(t *testing.T) {
	a := DefaultGrowthModel().Generate()
	b := DefaultGrowthModel().Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different trace")
		}
	}
}

func TestGrowthEmptyYears(t *testing.T) {
	g := DefaultGrowthModel()
	g.Years = 0
	if got := g.Generate(); got != nil {
		t.Errorf("zero years should yield nil, got %d points", len(got))
	}
}

func TestPeakWeekMissingYear(t *testing.T) {
	trace := DefaultGrowthModel().Generate()
	if w, _ := PeakWeek(trace, 1999); w != -1 {
		t.Errorf("missing year returned week %d", w)
	}
}

func TestProjectedPopulation(t *testing.T) {
	if got := ProjectedPopulation(10e6, 120.0/10e6); got != 120 {
		t.Errorf("ProjectedPopulation = %d, want 120", got)
	}
	if got := ProjectedPopulation(0, 0.1); got != 1 {
		t.Errorf("floor = %d, want 1", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, mean := range []float64{0.5, 4, 20, 200} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(r, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) empirical mean %v", mean, got)
		}
	}
	if Poisson(r, 0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}
