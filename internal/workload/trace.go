package workload

import "fmt"

// Trace is an empirical arrival log binned into fixed windows: Counts[i]
// requests observed during the i-th BinSeconds window. It is the
// trace-driven workload shape next to constant/bursty/diurnal — Rates
// lowers it to a PiecewiseRate so a recorded production day replays
// through the same open-loop Lewis-thinning path the synthetic shapes use,
// backlog crossing bin boundaries intact.
type Trace struct {
	// BinSeconds is the width of each bin of the log.
	BinSeconds float64 `json:"bin_seconds"`
	// Counts are the observed request counts per bin.
	Counts []float64 `json:"counts"`
	// Scale multiplies the replayed rate (what-if amplification of the
	// recorded load); 0 means 1.
	Scale float64 `json:"scale,omitempty"`
}

// Validate rejects unusable traces.
func (t *Trace) Validate() error {
	if t == nil || len(t.Counts) == 0 {
		return fmt.Errorf("workload: trace has no bins")
	}
	if t.BinSeconds <= 0 || t.BinSeconds != t.BinSeconds {
		return fmt.Errorf("workload: trace bin width %v must be > 0", t.BinSeconds)
	}
	if t.Scale < 0 || t.Scale != t.Scale {
		return fmt.Errorf("workload: trace scale %v must be >= 0", t.Scale)
	}
	any := false
	for i, c := range t.Counts {
		if c < 0 || c != c {
			return fmt.Errorf("workload: trace bin %d has count %v", i, c)
		}
		if c > 0 {
			any = true
		}
	}
	if !any {
		return fmt.Errorf("workload: trace is zero everywhere")
	}
	return nil
}

// Clone deep-copies the trace.
func (t Trace) Clone() Trace {
	c := t
	c.Counts = append([]float64(nil), t.Counts...)
	return c
}

// TotalDuration returns the length of the recorded log in seconds.
func (t *Trace) TotalDuration() float64 {
	return t.BinSeconds * float64(len(t.Counts))
}

// Rates lowers the trace to the piecewise-constant rate profile
// λ_i = Scale * Counts[i] / BinSeconds, one phase per bin.
func (t *Trace) Rates() *PiecewiseRate {
	scale := t.Scale
	if scale == 0 {
		scale = 1
	}
	p := &PiecewiseRate{Phases: make([]RatePhase, len(t.Counts))}
	for i, c := range t.Counts {
		p.Phases[i] = RatePhase{Rate: scale * c / t.BinSeconds, DurationSeconds: t.BinSeconds}
	}
	return p
}
