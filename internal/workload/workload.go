// Package workload defines the request workloads driving the Pl@ntNet
// engine experiments and the long-term user-growth model of the paper's
// Figure 2 ("exponential growth of new users every spring, peaks in
// May-June"), which motivates the optimization: anticipating the
// infrastructure evolution needed to pass the upcoming spring peak.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"e2clab/internal/rngutil"
)

// Spec is one experiment workload: a closed-loop population of simultaneous
// requests, held constant for the experiment duration (the paper's 80, 120
// and 140 request categories).
type Spec struct {
	// SimultaneousRequests is the closed-loop population size.
	SimultaneousRequests int
	// DurationSeconds is the experiment length (paper: 1380 s).
	DurationSeconds float64
}

// PaperWorkloads returns the three workload categories of Section IV.
func PaperWorkloads() []Spec {
	return []Spec{
		{SimultaneousRequests: 80, DurationSeconds: 1380},
		{SimultaneousRequests: 120, DurationSeconds: 1380},
		{SimultaneousRequests: 140, DurationSeconds: 1380},
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.SimultaneousRequests < 1 {
		return fmt.Errorf("workload: population %d", s.SimultaneousRequests)
	}
	if s.DurationSeconds <= 0 {
		return fmt.Errorf("workload: duration %v", s.DurationSeconds)
	}
	return nil
}

// GrowthModel generates the Figure 2 new-users-per-week curve: a baseline
// growing exponentially year over year, multiplied by a seasonal profile
// peaking in May-June, plus multiplicative noise.
type GrowthModel struct {
	// StartYear is the first modeled year (Figure 2 spans 2015-2021).
	StartYear int
	// Years is the number of modeled years.
	Years int
	// BaseUsersPerWeek is the year-1 off-season level.
	BaseUsersPerWeek float64
	// AnnualGrowth is the year-over-year multiplier (e.g. 1.45).
	AnnualGrowth float64
	// PeakAmplitude is the spring-peak multiplier over the off-season
	// level (e.g. 6 means peak weeks see ~7x the base).
	PeakAmplitude float64
	// NoiseCV is the multiplicative noise coefficient of variation.
	NoiseCV float64
	// Seed drives the noise.
	Seed int64
}

// DefaultGrowthModel approximates Figure 2: ~45% annual growth with strong
// May-June peaks.
func DefaultGrowthModel() GrowthModel {
	return GrowthModel{
		StartYear:        2015,
		Years:            7,
		BaseUsersPerWeek: 20000,
		AnnualGrowth:     1.45,
		PeakAmplitude:    6,
		NoiseCV:          0.10,
		Seed:             1,
	}
}

// WeekPoint is one week of the generated trace.
type WeekPoint struct {
	Year     int
	Week     int // 0..51
	NewUsers float64
}

// Generate produces the weekly trace.
func (g GrowthModel) Generate() []WeekPoint {
	if g.Years <= 0 {
		return nil
	}
	r := rngutil.New(g.Seed)
	out := make([]WeekPoint, 0, g.Years*52)
	for y := 0; y < g.Years; y++ {
		yearLevel := g.BaseUsersPerWeek * math.Pow(g.AnnualGrowth, float64(y))
		for w := 0; w < 52; w++ {
			season := g.seasonal(w)
			noise := 1 + g.NoiseCV*r.NormFloat64()
			if noise < 0.1 {
				noise = 0.1
			}
			out = append(out, WeekPoint{
				Year:     g.StartYear + y,
				Week:     w,
				NewUsers: yearLevel * season * noise,
			})
		}
	}
	return out
}

// seasonal is the within-year profile: a Gaussian bump centered on week 21
// (late May) with width ~4 weeks, floored at 1 (off-season).
func (g GrowthModel) seasonal(week int) float64 {
	d := float64(week) - 21
	return 1 + g.PeakAmplitude*math.Exp(-d*d/(2*16))
}

// PeakWeek returns the week index with the most new users in a given year
// of the trace.
func PeakWeek(trace []WeekPoint, year int) (week int, users float64) {
	week = -1
	for _, p := range trace {
		if p.Year == year && p.NewUsers > users {
			week, users = p.Week, p.NewUsers
		}
	}
	return week, users
}

// YearTotal sums new users of one year.
func YearTotal(trace []WeekPoint, year int) float64 {
	var s float64
	for _, p := range trace {
		if p.Year == year {
			s += p.NewUsers
		}
	}
	return s
}

// ProjectedPopulation converts a projected user count into the simultaneous
// request population the engine must sustain, given the fraction of users
// active concurrently at daily peak. The paper's Pl@ntNet serves ~10M users
// and ~400K images/day; the engine sees O(100) simultaneous requests.
func ProjectedPopulation(totalUsers, concurrentFraction float64) int {
	n := int(math.Ceil(totalUsers * concurrentFraction))
	if n < 1 {
		n = 1
	}
	return n
}

// Poisson draws a Poisson-distributed count with the given mean — used by
// open-loop workload variants in the examples.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		// Normal approximation for large means.
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= r.Float64()
	}
	return k - 1
}
