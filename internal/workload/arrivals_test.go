package workload

import (
	"math"
	"testing"
)

func TestPiecewiseRateValidate(t *testing.T) {
	good := &PiecewiseRate{Phases: []RatePhase{{Rate: 5, DurationSeconds: 10}, {Rate: 0, DurationSeconds: 5}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	cases := []*PiecewiseRate{
		nil,
		{},
		{Phases: []RatePhase{{Rate: -1, DurationSeconds: 1}}},
		{Phases: []RatePhase{{Rate: 1, DurationSeconds: 0}}},
		{Phases: []RatePhase{{Rate: 0, DurationSeconds: 1}}}, // zero everywhere
		{Phases: []RatePhase{{Rate: math.NaN(), DurationSeconds: 1}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted: %+v", i, p)
		}
	}
}

func TestPiecewiseRateLookup(t *testing.T) {
	p := &PiecewiseRate{Phases: []RatePhase{
		{Rate: 2, DurationSeconds: 10},
		{Rate: 8, DurationSeconds: 20},
		{Rate: 4, DurationSeconds: 10},
	}}
	if got := p.Max(); got != 8 {
		t.Errorf("Max = %v", got)
	}
	if got := p.TotalDuration(); got != 40 {
		t.Errorf("TotalDuration = %v", got)
	}
	for _, c := range []struct{ t, want float64 }{
		{0, 2}, {9.999, 2}, {10, 8}, {29, 8}, {30, 4}, {39, 4},
		{40, 4}, {1000, 4}, // beyond the profile: last plateau persists
	} {
		if got := p.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	want := (2*10 + 8*20 + 4*10) / 40.0
	if got := p.MeanRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
}
