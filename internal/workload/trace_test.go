package workload

import (
	"math"
	"testing"
)

func TestTraceRates(t *testing.T) {
	tr := Trace{BinSeconds: 30, Counts: []float64{60, 0, 150}}
	p := tr.Rates()
	if err := p.Validate(); err != nil {
		t.Fatalf("lowered profile invalid: %v", err)
	}
	want := []RatePhase{{2, 30}, {0, 30}, {5, 30}}
	for i, ph := range p.Phases {
		if math.Abs(ph.Rate-want[i].Rate) > 1e-12 || ph.DurationSeconds != want[i].DurationSeconds {
			t.Errorf("phase %d = %+v, want %+v", i, ph, want[i])
		}
	}
	if p.Max() != 5 || tr.TotalDuration() != 90 {
		t.Errorf("Max = %v, TotalDuration = %v", p.Max(), tr.TotalDuration())
	}
}

func TestTraceScale(t *testing.T) {
	tr := Trace{BinSeconds: 10, Counts: []float64{40}, Scale: 2.5}
	if r := tr.Rates().Phases[0].Rate; math.Abs(r-10) > 1e-12 {
		t.Fatalf("scaled rate = %v, want 10", r)
	}
}

func TestTraceValidate(t *testing.T) {
	bad := []Trace{
		{},
		{BinSeconds: 0, Counts: []float64{1}},
		{BinSeconds: -5, Counts: []float64{1}},
		{BinSeconds: 10, Counts: []float64{-1}},
		{BinSeconds: 10, Counts: []float64{0, 0}},
		{BinSeconds: 10, Counts: []float64{1}, Scale: -1},
		{BinSeconds: math.NaN(), Counts: []float64{1}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	good := Trace{BinSeconds: 10, Counts: []float64{0, 3, 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	var nilTrace *Trace
	if err := nilTrace.Validate(); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestTraceCloneIsolation(t *testing.T) {
	orig := Trace{BinSeconds: 10, Counts: []float64{1, 2}}
	c := orig.Clone()
	c.Counts[0] = 99
	if orig.Counts[0] != 1 {
		t.Fatal("Clone shares the counts slice")
	}
}
