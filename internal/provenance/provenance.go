// Package provenance implements E2Clab's reproducibility machinery: the
// per-evaluation optimization directories created by prepare(), the
// deployment records captured by launch(), the evaluation archives written
// by finalize(), and the Phase III summary of computations that lets other
// researchers reproduce the results (optimization problem, sample-selection
// method, search algorithm and hyperparameters, best configuration found).
package provenance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Archive is the root directory of one optimization run's artifacts.
type Archive struct {
	Root string
}

// NewArchive creates (or reuses) the root directory.
func NewArchive(root string) (*Archive, error) {
	if root == "" {
		return nil, fmt.Errorf("provenance: empty archive root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	return &Archive{Root: root}, nil
}

// Prepare creates the dedicated optimization directory for one model
// evaluation (the prepare() method of the paper's Optimization class).
func (a *Archive) Prepare(evalIndex int) (string, error) {
	dir := filepath.Join(a.Root, fmt.Sprintf("optimization_%04d", evalIndex))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("provenance: prepare eval %d: %w", evalIndex, err)
	}
	return dir, nil
}

// DeploymentRecord captures deployment-related information for
// reproducibility: physical machines, network constraints, and application
// configuration (the launch() capture).
type DeploymentRecord struct {
	Machines      []string          `json:"machines,omitempty"`
	NetworkRules  []string          `json:"network_rules,omitempty"`
	Configuration map[string]string `json:"configuration"`
}

// EvaluationRecord is the finalize() archive for one evaluation.
type EvaluationRecord struct {
	Index      int                `json:"index"`
	Config     map[string]float64 `json:"config"`
	Objective  float64            `json:"objective"`
	Metric     string             `json:"metric"`
	Deployment *DeploymentRecord  `json:"deployment,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Finalize stores the evaluation record in its optimization directory.
func (a *Archive) Finalize(rec EvaluationRecord) error {
	dir, err := a.Prepare(rec.Index)
	if err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "evaluation.json"), rec)
}

// Summary is the Phase III "summary of computations".
type Summary struct {
	Name string `json:"name"`
	// Problem definition.
	Variables   []VariableDef `json:"variables"`
	Objective   string        `json:"objective"`
	Mode        string        `json:"mode"`
	Constraints []string      `json:"constraints,omitempty"`
	// Methods.
	SampleMethod  string            `json:"sample_method"`
	SearchAlg     string            `json:"search_algorithm"`
	Hyperparams   map[string]string `json:"hyperparameters,omitempty"`
	Scheduler     string            `json:"scheduler,omitempty"`
	NumSamples    int               `json:"num_samples"`
	MaxConcurrent int               `json:"max_concurrent"`
	Repeat        int               `json:"repeat,omitempty"`
	// RepeatParallelism records the per-evaluation repeat worker-pool bound
	// so archived runs replay with the same execution setup.
	RepeatParallelism int     `json:"repeat_parallelism,omitempty"`
	Duration          float64 `json:"duration,omitempty"`
	Seed              int64   `json:"seed"`
	// Results.
	BestConfig    map[string]float64 `json:"best_config"`
	BestObjective float64            `json:"best_objective"`
	Evaluations   int                `json:"evaluations"`
	FinishedAt    string             `json:"finished_at"`
}

// VariableDef documents one optimization variable and its bounds.
type VariableDef struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Low  float64 `json:"low"`
	High float64 `json:"high"`
}

// WriteSummary stores the Phase III summary at the archive root.
func (a *Archive) WriteSummary(s Summary) error {
	if s.FinishedAt == "" {
		//simlint:allow wallclock archival metadata only: the timestamp records when the artifact was produced and feeds no simulated or optimized output
		s.FinishedAt = time.Now().UTC().Format(time.RFC3339)
	}
	return writeJSON(filepath.Join(a.Root, "summary.json"), s)
}

// WriteBlob stores an opaque artifact (e.g. a serialized surrogate model)
// at the archive root.
func (a *Archive) WriteBlob(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("provenance: empty blob name")
	}
	return os.WriteFile(filepath.Join(a.Root, name), data, 0o644)
}

// ReadBlob loads an artifact written with WriteBlob.
func (a *Archive) ReadBlob(name string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(a.Root, name))
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	return b, nil
}

// ReadSummary loads a previously written summary (for `e2clab report` and
// the repeatability command).
func (a *Archive) ReadSummary() (*Summary, error) {
	b, err := os.ReadFile(filepath.Join(a.Root, "summary.json"))
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("provenance: corrupt summary: %w", err)
	}
	return &s, nil
}

// Evaluations loads every archived evaluation, sorted by index.
func (a *Archive) Evaluations() ([]EvaluationRecord, error) {
	entries, err := os.ReadDir(a.Root)
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	var out []EvaluationRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(a.Root, e.Name(), "evaluation.json"))
		if err != nil {
			continue // directory prepared but evaluation never finalized
		}
		var rec EvaluationRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("provenance: corrupt record %s: %w", e.Name(), err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("provenance: marshal %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	return os.Rename(tmp, path)
}
