package provenance

import (
	"os"
	"path/filepath"
	"testing"
)

func TestArchiveLifecycle(t *testing.T) {
	root := filepath.Join(t.TempDir(), "backup", "exp1")
	a, err := NewArchive(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := a.Prepare(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("optimization directory not created: %v", err)
	}
	// Prepare is idempotent.
	dir2, err := a.Prepare(0)
	if err != nil || dir2 != dir {
		t.Fatalf("Prepare not idempotent: %v %v", dir2, err)
	}
}

func TestFinalizeAndReadBack(t *testing.T) {
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := []EvaluationRecord{
		{Index: 1, Config: map[string]float64{"http": 54}, Objective: 2.484, Metric: "user_resp_time"},
		{Index: 0, Config: map[string]float64{"http": 40}, Objective: 2.657, Metric: "user_resp_time"},
	}
	for _, r := range recs {
		if err := a.Finalize(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.Evaluations()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	// Sorted by index.
	if got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("records not sorted: %+v", got)
	}
	if got[0].Objective != 2.657 || got[0].Config["http"] != 40 {
		t.Errorf("record corrupted: %+v", got[0])
	}
}

func TestPreparedButNotFinalizedSkipped(t *testing.T) {
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Prepare(5); err != nil {
		t.Fatal(err)
	}
	if err := a.Finalize(EvaluationRecord{Index: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Evaluations()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("unfinalized eval included: %d records", len(got))
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := Summary{
		Name:      "plantnet_engine",
		Variables: []VariableDef{{Name: "http", Kind: "int", Low: 20, High: 60}},
		Objective: "user_resp_time", Mode: "min",
		SampleMethod: "lhs", SearchAlg: "skopt",
		Hyperparams:   map[string]string{"base_estimator": "ET"},
		NumSamples:    10,
		MaxConcurrent: 2,
		Seed:          42,
		BestConfig:    map[string]float64{"http": 54, "download": 54, "simsearch": 53, "extract": 7},
		BestObjective: 2.484,
		Evaluations:   9,
	}
	if err := a.WriteSummary(s); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadSummary()
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.BestObjective != s.BestObjective ||
		got.BestConfig["http"] != 54 || got.Hyperparams["base_estimator"] != "ET" {
		t.Errorf("summary mismatch: %+v", got)
	}
	if got.FinishedAt == "" {
		t.Error("FinishedAt not stamped")
	}
}

func TestReadSummaryMissing(t *testing.T) {
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadSummary(); err == nil {
		t.Error("missing summary read succeeded")
	}
}

func TestEmptyRootRejected(t *testing.T) {
	if _, err := NewArchive(""); err == nil {
		t.Error("empty root accepted")
	}
}

func TestCorruptRecordReported(t *testing.T) {
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir, err := a.Prepare(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "evaluation.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evaluations(); err == nil {
		t.Error("corrupt record not reported")
	}
}
