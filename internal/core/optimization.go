package core

import (
	"fmt"
	"math"
	"sync"

	"e2clab/internal/bo"
	"e2clab/internal/metaheur"
	"e2clab/internal/provenance"
	"e2clab/internal/space"
	"e2clab/internal/tune"
)

// SearchSpec selects and parameterizes the search algorithm, mirroring
// Listing 1's SkOptSearch(Optimizer(base_estimator='ET',
// n_initial_points=45, initial_point_generator="lhs",
// acq_func="gp_hedge")).
type SearchSpec struct {
	// Algorithm: "skopt" (Bayesian optimization, default), or one of the
	// short-running-application algorithms "ga", "de", "sa", "pso",
	// "tabu", or "random".
	Algorithm string
	// Bayesian-optimization settings (skopt only).
	BaseEstimator         string
	NInitialPoints        int
	InitialPointGenerator string
	AcqFunc               string
}

func (s *SearchSpec) fillDefaults() {
	if s.Algorithm == "" {
		s.Algorithm = "skopt"
	}
	if s.BaseEstimator == "" {
		s.BaseEstimator = "ET"
	}
	if s.InitialPointGenerator == "" {
		s.InitialPointGenerator = "lhs"
	}
	if s.AcqFunc == "" {
		s.AcqFunc = "gp_hedge"
	}
	if s.NInitialPoints <= 0 {
		s.NInitialPoints = 10
	}
}

// Spec is the user-defined optimization setup (the optimizer_conf
// configuration file of the extended E2Clab architecture).
type Spec struct {
	Problem *space.Problem
	Search  SearchSpec
	// NumSamples is the number of configurations evaluated (num_samples).
	NumSamples int
	// MaxConcurrent bounds parallel evaluations (ConcurrencyLimiter).
	MaxConcurrent int
	// UseASHA enables the AsyncHyperBandScheduler of Listing 1.
	UseASHA bool
	// Repeat and Duration carry the CLI's --repeat/--duration settings to
	// the objective (how many times and how long each configuration runs).
	Repeat   int
	Duration float64
	// RepeatParallelism bounds the worker pool each evaluation may use to
	// run its Repeat independent experiments concurrently (see
	// plantnet.RunOptions.MaxParallel); 0 uses GOMAXPROCS. Tune it down
	// when MaxConcurrent already saturates the machine.
	RepeatParallelism int
	Seed              int64
	// ArchiveDir is where Phase I-III artifacts are stored; empty disables
	// archiving.
	ArchiveDir string
}

// Evaluation is the context handed to the user objective for one model
// evaluation: the configuration to deploy and the dedicated optimization
// directory created by prepare().
type Evaluation struct {
	Index int
	X     []float64
	// Dir is the evaluation's optimization directory ("" when archiving is
	// disabled).
	Dir string
	// Repeat and Duration echo the Spec for the deployment logic.
	Repeat   int
	Duration float64
	// RepeatParallelism echoes Spec.RepeatParallelism for objectives that
	// run their repeats on a worker pool.
	RepeatParallelism int
	// Report exposes intermediate metric reporting to the ASHA scheduler.
	Report func(iteration int, value float64) bool
}

// Objective deploys one configuration on the testbed and returns the
// metric value (the run_objective of Listing 1: prepare -> launch ->
// finalize -> report).
type Objective func(ev *Evaluation) (float64, error)

// Result summarizes one optimization run.
type Result struct {
	Best     []float64
	BestY    float64
	Analysis *tune.Analysis
	Summary  provenance.Summary
	// History is the running-best convergence curve (metaheuristics) or
	// per-trial values in completion order (skopt).
	History []float64
}

// Manager is the Optimization Manager of the extended E2Clab architecture:
// it interprets the user-defined optimization setup and automates the
// optimization cycle, then provides the summary of computations for
// reproducibility.
type Manager struct {
	spec    Spec
	archive *provenance.Archive

	mu    sync.Mutex
	evals int
}

// NewManager validates the spec and prepares the archive.
func NewManager(spec Spec) (*Manager, error) {
	if spec.Problem == nil {
		return nil, fmt.Errorf("core: optimization spec has no problem")
	}
	if err := spec.Problem.Validate(); err != nil {
		return nil, err
	}
	if spec.Problem.MultiObjective() {
		return nil, fmt.Errorf("core: Manager optimizes a single objective; scalarize multi-objective problems with WeightedSum (see Fig. 4 example)")
	}
	spec.Search.fillDefaults()
	if spec.NumSamples <= 0 {
		spec.NumSamples = 10
	}
	if spec.MaxConcurrent <= 0 {
		spec.MaxConcurrent = 1
	}
	if spec.Repeat <= 0 {
		spec.Repeat = 1
	}
	if spec.Duration <= 0 {
		spec.Duration = 1380
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	m := &Manager{spec: spec}
	if spec.ArchiveDir != "" {
		a, err := provenance.NewArchive(spec.ArchiveDir)
		if err != nil {
			return nil, err
		}
		m.archive = a
	}
	return m, nil
}

// Spec returns the effective (defaults-filled) specification.
func (m *Manager) Spec() Spec { return m.spec }

// Optimize runs the full optimization cycle and writes the Phase III
// summary.
func (m *Manager) Optimize(obj Objective) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("core: nil objective")
	}
	var res *Result
	var err error
	switch m.spec.Search.Algorithm {
	case "skopt", "random":
		res, err = m.optimizeParallel(obj)
	case "ga", "de", "sa", "pso", "tabu":
		res, err = m.optimizeMetaheuristic(obj)
	default:
		return nil, fmt.Errorf("core: unknown search algorithm %q", m.spec.Search.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res.Summary = m.buildSummary(res)
	if m.archive != nil {
		if err := m.archive.WriteSummary(res.Summary); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// wrap turns the user objective into a tune objective with
// prepare/launch/finalize semantics around it.
func (m *Manager) wrap(obj Objective) tune.Objective {
	return func(ctx *tune.Context, x []float64) (float64, error) {
		m.mu.Lock()
		idx := m.evals
		m.evals++
		m.mu.Unlock()
		ev := &Evaluation{
			Index:             idx,
			X:                 append([]float64(nil), x...),
			Repeat:            m.spec.Repeat,
			Duration:          m.spec.Duration,
			RepeatParallelism: m.spec.RepeatParallelism,
			Report:            ctx.Report,
		}
		if m.archive != nil {
			dir, err := m.archive.Prepare(idx) // prepare()
			if err != nil {
				return 0, err
			}
			ev.Dir = dir
		}
		y, err := obj(ev) // launch()
		if err != nil {
			return 0, err
		}
		if m.archive != nil { // finalize()
			rec := provenance.EvaluationRecord{
				Index:     idx,
				Config:    m.spec.Problem.Space.Map(x),
				Objective: y,
				Metric:    m.spec.Problem.Objectives[0].Name,
			}
			if err := m.archive.Finalize(rec); err != nil {
				return 0, err
			}
		}
		return y, nil
	}
}

func (m *Manager) optimizeParallel(obj Objective) (*Result, error) {
	var search tune.SearchAlgorithm
	switch m.spec.Search.Algorithm {
	case "random":
		search = &tune.RandomSearch{Space: m.spec.Problem.Space, Seed: m.spec.Seed}
	default:
		opt, err := bo.New(m.spec.Problem.Space, bo.Config{
			BaseEstimator:         m.spec.Search.BaseEstimator,
			NInitialPoints:        m.spec.Search.NInitialPoints,
			InitialPointGenerator: m.spec.Search.InitialPointGenerator,
			AcqFunc:               m.spec.Search.AcqFunc,
			Seed:                  m.spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		search = opt
	}
	var sched tune.Scheduler
	if m.spec.UseASHA {
		sched = &tune.AsyncHyperBand{}
	}
	objective := m.spec.Problem.Objectives[0]
	analysis, err := tune.Run(tune.RunConfig{
		Name:          m.spec.Problem.Name,
		Metric:        objective.Name,
		Mode:          objective.Mode,
		NumSamples:    m.spec.NumSamples,
		MaxConcurrent: m.spec.MaxConcurrent,
		Scheduler:     sched,
	}, search, m.wrap(obj))
	if err != nil {
		return nil, err
	}
	best := analysis.Best()
	if best == nil {
		return nil, fmt.Errorf("core: every evaluation failed")
	}
	// Archive the final surrogate model alongside the evaluations
	// (finalize(): "intermediate models throughout training").
	if m.archive != nil {
		if opt, ok := search.(*bo.Optimizer); ok {
			if blob, err := opt.SnapshotModel(); err == nil {
				if err := m.archive.WriteBlob("model.json", blob); err != nil {
					return nil, err
				}
			}
		}
	}
	res := &Result{Best: best.Config, BestY: best.Value, Analysis: analysis}
	for _, t := range analysis.Trials {
		if t.Status == tune.Completed || t.Status == tune.Stopped {
			res.History = append(res.History, t.Value)
		}
	}
	return res, nil
}

func (m *Manager) optimizeMetaheuristic(obj Objective) (*Result, error) {
	var alg metaheur.Algorithm
	switch m.spec.Search.Algorithm {
	case "ga":
		alg = metaheur.GA{Seed: m.spec.Seed}
	case "de":
		alg = metaheur.DE{Seed: m.spec.Seed}
	case "sa":
		alg = metaheur.SA{Seed: m.spec.Seed}
	case "pso":
		alg = metaheur.PSO{Seed: m.spec.Seed}
	case "tabu":
		alg = metaheur.Tabu{Seed: m.spec.Seed}
	}
	wrapped := m.wrap(obj)
	sign := 1.0
	if m.spec.Problem.Objectives[0].Mode == space.Max {
		sign = -1
	}
	var evalErr error
	fn := metaheur.Penalized(m.spec.Problem, func(x []float64) float64 {
		y, err := wrapped(nil, x)
		if err != nil {
			evalErr = err
			return math.Inf(1)
		}
		return sign * y
	}, 1e9)
	r := alg.Minimize(m.spec.Problem.Space, fn, m.spec.NumSamples)
	if evalErr != nil {
		return nil, evalErr
	}
	if r.X == nil {
		return nil, fmt.Errorf("core: %s produced no result", alg.Name())
	}
	return &Result{Best: r.X, BestY: sign * r.Y, History: r.History}, nil
}

// buildSummary assembles the Phase III reproducibility summary.
func (m *Manager) buildSummary(res *Result) provenance.Summary {
	p := m.spec.Problem
	vars := make([]provenance.VariableDef, p.Space.Len())
	for i := 0; i < p.Space.Len(); i++ {
		d := p.Space.Dim(i)
		vars[i] = provenance.VariableDef{Name: d.Name, Kind: d.Kind.String(), Low: d.Low, High: d.High}
	}
	var constraints []string
	for _, c := range p.Constraints {
		constraints = append(constraints, c.Name)
	}
	for _, e := range p.Equalities {
		constraints = append(constraints, e.Name+" (equality)")
	}
	hyper := map[string]string{}
	sched := ""
	if m.spec.Search.Algorithm == "skopt" {
		hyper["base_estimator"] = m.spec.Search.BaseEstimator
		hyper["n_initial_points"] = fmt.Sprintf("%d", m.spec.Search.NInitialPoints)
		hyper["initial_point_generator"] = m.spec.Search.InitialPointGenerator
		hyper["acq_func"] = m.spec.Search.AcqFunc
	}
	if m.spec.UseASHA {
		sched = "async_hyperband"
	}
	return provenance.Summary{
		Name:              p.Name,
		Variables:         vars,
		Objective:         p.Objectives[0].Name,
		Mode:              p.Objectives[0].Mode.String(),
		Constraints:       constraints,
		SampleMethod:      m.spec.Search.InitialPointGenerator,
		SearchAlg:         m.spec.Search.Algorithm,
		Hyperparams:       hyper,
		Scheduler:         sched,
		NumSamples:        m.spec.NumSamples,
		MaxConcurrent:     m.spec.MaxConcurrent,
		Repeat:            m.spec.Repeat,
		RepeatParallelism: m.spec.RepeatParallelism,
		Duration:          m.spec.Duration,
		Seed:              m.spec.Seed,
		BestConfig:        p.Space.Map(res.Best),
		BestObjective:     res.BestY,
		Evaluations:       m.evals,
	}
}
