package core

import (
	"math"
	"path/filepath"
	"testing"

	"e2clab/internal/netem"
	"e2clab/internal/plantnet"
	"e2clab/internal/provenance"
	"e2clab/internal/space"
	"e2clab/internal/surrogate"
	"e2clab/internal/testbed"
)

func paperExperiment() *Experiment {
	return &Experiment{
		Name:    "plantnet",
		Testbed: testbed.Grid5000(),
		Layers: []testbed.Layer{
			{Name: "cloud", Services: []testbed.Service{
				{Name: "plantnet_engine", Quantity: 1, Cluster: "chifflot",
					Env: map[string]string{"http": "40", "download": "40", "extract": "7", "simsearch": "40"}},
			}},
			{Name: "edge", Services: []testbed.Service{
				{Name: "client", Quantity: 8, Cluster: "chiclet"},
			}},
		},
		Network: netem.New(netem.Rule{Src: "edge", Dst: "cloud", DelayMS: 2, RateGbps: 10, Symmetric: true}),
	}
}

func TestExperimentValidateAndDeploy(t *testing.T) {
	e := paperExperiment()
	d, err := e.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	defer d.ReleaseAll()
	if d.NodeCount() != 9 {
		t.Errorf("deployed %d nodes", d.NodeCount())
	}
}

func TestExperimentValidationErrors(t *testing.T) {
	cases := []func(*Experiment){
		func(e *Experiment) { e.Name = "" },
		func(e *Experiment) { e.Testbed = nil },
		func(e *Experiment) { e.Layers = nil },
		func(e *Experiment) { e.Layers[0].Name = "" },
		func(e *Experiment) { e.Layers[0].Services = nil },
		func(e *Experiment) { e.Layers[0].Services[0].Cluster = "mars" },
		func(e *Experiment) { e.Layers = append(e.Layers, e.Layers[0]) }, // duplicate layer
		func(e *Experiment) {
			e.Network = netem.New(netem.Rule{Src: "edge", Dst: "nowhere"})
		},
	}
	for i, mutate := range cases {
		e := paperExperiment()
		mutate(e)
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid experiment accepted", i)
		}
	}
}

func TestServiceRegistry(t *testing.T) {
	r := NewRegistry()
	svc := &PlantNetService{}
	if err := r.Register(svc); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(svc); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register(nil); err == nil {
		t.Error("nil service accepted")
	}
	if _, ok := r.Get("plantnet_engine"); !ok {
		t.Error("registered service not found")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "plantnet_engine" {
		t.Errorf("Names = %v", names)
	}
}

func TestDeployServicesInvokesUserLogic(t *testing.T) {
	e := paperExperiment()
	// Only keep the engine layer so one registered service suffices.
	e.Layers = e.Layers[:1]
	e.Network = nil
	d, err := e.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	defer d.ReleaseAll()
	r := NewRegistry()
	svc := &PlantNetService{}
	if err := r.Register(svc); err != nil {
		t.Fatal(err)
	}
	if err := r.DeployServices(e, d); err != nil {
		t.Fatal(err)
	}
	if len(svc.Deployed) != 1 || svc.Deployed[0] != plantnet.Baseline {
		t.Errorf("service deploy saw %+v", svc.Deployed)
	}
}

func TestDeployServicesMissingImplementation(t *testing.T) {
	e := paperExperiment()
	e.Layers = e.Layers[:1]
	e.Network = nil
	d, err := e.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	defer d.ReleaseAll()
	if err := NewRegistry().DeployServices(e, d); err == nil {
		t.Error("missing implementation not reported")
	}
}

func TestPlantNetServiceRequiresGPU(t *testing.T) {
	svc := &PlantNetService{}
	node := &testbed.Node{ID: "gros-1", Spec: testbed.NodeSpec{}}
	if err := svc.Deploy([]*testbed.Node{node}, nil); err == nil {
		t.Error("GPU-less node accepted")
	}
	if err := svc.Deploy(nil, nil); err == nil {
		t.Error("empty node list accepted")
	}
}

func TestPoolConfigFromEnv(t *testing.T) {
	cfg, err := PoolConfigFromEnv(map[string]string{"http": "54", "download": "54", "extract": "7", "simsearch": "53"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg != plantnet.PreliminaryOptimum {
		t.Errorf("cfg = %+v", cfg)
	}
	// Defaults fill missing keys.
	cfg, err = PoolConfigFromEnv(nil)
	if err != nil || cfg != plantnet.Baseline {
		t.Errorf("default cfg = %+v, err %v", cfg, err)
	}
	if _, err := PoolConfigFromEnv(map[string]string{"http": "lots"}); err == nil {
		t.Error("bad value accepted")
	}
}

// TestListing1Reproduction runs the full user-facing stack of Listing 1:
// SkOpt search (ET, LHS, gp_hedge) + ConcurrencyLimiter(2) + ASHA +
// num_samples on the Pl@ntNet problem, against a fast synthetic surface,
// with the archive capturing prepare/launch/finalize artifacts.
func TestListing1Reproduction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "backup")
	m, err := NewManager(Spec{
		Problem: space.PlantNetProblem(),
		Search: SearchSpec{Algorithm: "skopt", BaseEstimator: "ET",
			NInitialPoints: 8, InitialPointGenerator: "lhs", AcqFunc: "gp_hedge"},
		NumSamples:    24,
		MaxConcurrent: 2,
		UseASHA:       true,
		Seed:          17,
		ArchiveDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := func(ev *Evaluation) (float64, error) {
		x := ev.X
		return 2.4 + math.Pow(x[0]-54, 2)/800 + math.Pow(x[3]-6, 2)/40, nil
	}
	res, err := m.Optimize(obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY > 2.6 {
		t.Errorf("best objective %.3f, optimization ineffective", res.BestY)
	}
	// Phase III summary archived and re-readable.
	a, err := provenance.NewArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := a.ReadSummary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.SearchAlg != "skopt" || sum.Hyperparams["base_estimator"] != "ET" ||
		sum.Hyperparams["acq_func"] != "gp_hedge" || sum.Scheduler != "async_hyperband" {
		t.Errorf("summary methods wrong: %+v", sum)
	}
	if sum.Evaluations != 24 || sum.NumSamples != 24 || sum.MaxConcurrent != 2 {
		t.Errorf("summary counts wrong: %+v", sum)
	}
	evals, err := a.Evaluations()
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 24 {
		t.Errorf("archived %d evaluations, want 24", len(evals))
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Spec{}); err == nil {
		t.Error("nil problem accepted")
	}
	multi := &space.Problem{Name: "m", Space: space.New(space.Float("x", 0, 1)),
		Objectives: []space.Objective{{Name: "a"}, {Name: "b"}}}
	if _, err := NewManager(Spec{Problem: multi}); err == nil {
		t.Error("multi-objective problem accepted by scalar manager")
	}
	m, err := NewManager(Spec{Problem: space.PlantNetProblem(),
		Search: SearchSpec{Algorithm: "quantum"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Optimize(func(ev *Evaluation) (float64, error) { return 0, nil }); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := m.Optimize(nil); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestManagerMetaheuristics(t *testing.T) {
	for _, alg := range []string{"ga", "de", "sa", "pso", "tabu"} {
		m, err := NewManager(Spec{
			Problem:    space.PlantNetProblem(),
			Search:     SearchSpec{Algorithm: alg},
			NumSamples: 600,
			Seed:       3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Optimize(func(ev *Evaluation) (float64, error) {
			return math.Abs(ev.X[3] - 6), nil
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.BestY > 1 {
			t.Errorf("%s: best %.3f (x=%v)", alg, res.BestY, res.Best)
		}
		if len(res.History) != 600 {
			t.Errorf("%s: history %d", alg, len(res.History))
		}
	}
}

func TestManagerRandomSearch(t *testing.T) {
	m, err := NewManager(Spec{
		Problem:    space.PlantNetProblem(),
		Search:     SearchSpec{Algorithm: "random"},
		NumSamples: 50,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Optimize(func(ev *Evaluation) (float64, error) { return ev.X[0], nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] > 30 {
		t.Errorf("random search best http=%v after 50 draws", res.Best[0])
	}
}

func TestManagerMaximization(t *testing.T) {
	p := space.NewProblem("throughput", space.New(space.Int("x", 0, 100)),
		space.Objective{Name: "thr", Mode: space.Max})
	m, err := NewManager(Spec{Problem: p, Search: SearchSpec{Algorithm: "de"}, NumSamples: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Optimize(func(ev *Evaluation) (float64, error) { return ev.X[0], nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] < 95 {
		t.Errorf("maximization found %v, want ~100", res.Best[0])
	}
	if res.BestY < 95 {
		t.Errorf("BestY = %v", res.BestY)
	}
}

func TestEvaluationContext(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	m, err := NewManager(Spec{
		Problem:    space.PlantNetProblem(),
		NumSamples: 3,
		Repeat:     6,
		Duration:   1380,
		Seed:       2,
		ArchiveDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawDirs, sawRepeat int
	_, err = m.Optimize(func(ev *Evaluation) (float64, error) {
		if ev.Dir != "" {
			sawDirs++
		}
		if ev.Repeat == 6 && ev.Duration == 1380 {
			sawRepeat++
		}
		return float64(ev.Index), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawDirs != 3 || sawRepeat != 3 {
		t.Errorf("evaluation context incomplete: dirs=%d repeat=%d", sawDirs, sawRepeat)
	}
}

func TestWeightedSumAndPareto(t *testing.T) {
	f1 := func(x []float64) float64 { return x[0] }
	f2 := func(x []float64) float64 { return 1 - x[0] }
	ws := WeightedSum([]float64{2, 1}, f1, f2)
	if got := ws([]float64{0.5}); math.Abs(got-(2*0.5+0.5)) > 1e-12 {
		t.Errorf("WeightedSum = %v", got)
	}
	// Missing weights default to 1.
	ws2 := WeightedSum(nil, f1, f2)
	if got := ws2([]float64{0.3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("default weights: %v", got)
	}

	pts := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 5}, // dominated by {1,5}? no: 1<=3, 5<=5, strictly better -> dominated
		{2, 6}, // dominated by {1,5}
	}
	front := ParetoFront(pts)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Errorf("point %d should not be on the front", i)
		}
	}
	if !Dominates([]float64{1, 1}, []float64{1, 2}) {
		t.Error("domination with tie not detected")
	}
	if Dominates([]float64{1, 2}, []float64{2, 1}) {
		t.Error("incomparable points reported as dominating")
	}
	if Dominates([]float64{1, 1}, []float64{1, 1}) {
		t.Error("equal points reported as dominating")
	}
}

// TestPlantNetObjectiveEndToEnd exercises the real engine-backed objective
// with a short duration.
func TestPlantNetObjectiveEndToEnd(t *testing.T) {
	m, err := NewManager(Spec{
		Problem:    space.PlantNetProblem(),
		NumSamples: 1,
		Repeat:     1,
		Duration:   120,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := PlantNetObjective(80, 9)
	// Single evaluation via the manager machinery.
	res, err := m.Optimize(obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY < 1 || res.BestY > 6 {
		t.Errorf("response time %v implausible", res.BestY)
	}
}

// TestArchivedModelReloadable: a skopt run with an archive produces a
// serialized surrogate that reloads and predicts.
func TestArchivedModelReloadable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	m, err := NewManager(Spec{
		Problem:    space.PlantNetProblem(),
		NumSamples: 12,
		Seed:       41,
		ArchiveDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Optimize(func(ev *Evaluation) (float64, error) {
		return ev.X[0] + ev.X[3], nil
	}); err != nil {
		t.Fatal(err)
	}
	a, err := provenance.NewArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.ReadBlob("model.json")
	if err != nil {
		t.Fatal(err)
	}
	model, err := surrogate.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if model.Name() != "ET" {
		t.Errorf("archived model %q, want ET", model.Name())
	}
	// The surrogate learned the trend: low http+extract predicts lower.
	lo := model.Predict(space.PlantNetProblem().Space.ToUnit([]float64{20, 40, 40, 3}))
	hi := model.Predict(space.PlantNetProblem().Space.ToUnit([]float64{60, 40, 40, 9}))
	if lo >= hi {
		t.Errorf("archived model lost the trend: lo=%v hi=%v", lo, hi)
	}
}

// TestEndToEndDeterminism: two identical manager runs produce identical
// summaries — the reproducibility invariant of the whole stack.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() Summary2 {
		m, err := NewManager(Spec{
			Problem:       space.PlantNetProblem(),
			NumSamples:    10,
			MaxConcurrent: 1, // deterministic tell order
			Seed:          77,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Optimize(func(ev *Evaluation) (float64, error) {
			return math.Pow(ev.X[0]-54, 2) + math.Pow(ev.X[3]-6, 2), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return Summary2{Best: res.Best, BestY: res.BestY}
	}
	a, b := run(), run()
	if a.BestY != b.BestY {
		t.Errorf("BestY diverged: %v vs %v", a.BestY, b.BestY)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Errorf("Best diverged: %v vs %v", a.Best, b.Best)
		}
	}
}

// Summary2 is a minimal comparable result for the determinism test.
type Summary2 struct {
	Best  []float64
	BestY float64
}
