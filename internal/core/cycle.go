package core

import (
	"fmt"

	"e2clab/internal/testbed"
	"e2clab/internal/workflow"
)

// Cycle assembles the complete E2Clab experimental cycle for this
// experiment as a workflow DAG:
//
//	validate -> reserve (deploy layers) -> deploy services -> run workload
//	        -> backup -> release
//
// runWorkload receives the live deployment; backup may be nil. The release
// task always has the deployment available and runs even when run/backup
// fail only if their dependencies succeeded — on upstream failure the
// reservation is released by the returned cleanup function, which callers
// should defer.
func (e *Experiment) Cycle(reg *Registry, runWorkload func(d *testbed.Deployment) error, backup func() error) (*workflow.Workflow, func(), error) {
	if runWorkload == nil {
		return nil, nil, fmt.Errorf("core: Cycle needs a workload function")
	}
	w := workflow.New()
	var dep *testbed.Deployment
	cleanup := func() {
		if dep != nil {
			dep.ReleaseAll()
		}
	}
	w.MustAdd(workflow.Task{Name: "validate", Run: e.Validate})
	w.MustAdd(workflow.Task{Name: "reserve", DependsOn: []string{"validate"}, Run: func() error {
		d, err := e.Testbed.Deploy(e.Layers)
		if err != nil {
			return err
		}
		dep = d
		return nil
	}})
	w.MustAdd(workflow.Task{Name: "deploy-services", DependsOn: []string{"reserve"}, Run: func() error {
		if reg == nil {
			return nil // no user-defined services registered
		}
		return reg.DeployServices(e, dep)
	}})
	w.MustAdd(workflow.Task{Name: "run-workload", DependsOn: []string{"deploy-services"}, Run: func() error {
		return runWorkload(dep)
	}})
	if backup != nil {
		w.MustAdd(workflow.Task{Name: "backup", DependsOn: []string{"run-workload"}, Run: backup})
		w.MustAdd(workflow.Task{Name: "release", DependsOn: []string{"backup"}, Run: func() error {
			cleanup()
			return nil
		}})
	} else {
		w.MustAdd(workflow.Task{Name: "release", DependsOn: []string{"run-workload"}, Run: func() error {
			cleanup()
			return nil
		}})
	}
	return w, cleanup, nil
}
