package core

import (
	"errors"
	"testing"

	"e2clab/internal/plantnet"
	"e2clab/internal/testbed"
	"e2clab/internal/workflow"
)

func TestCycleHappyPath(t *testing.T) {
	e := paperExperiment()
	e.Layers = e.Layers[:1] // engine only; one registered service suffices
	e.Network = nil
	reg := NewRegistry()
	svc := &PlantNetService{}
	if err := reg.Register(svc); err != nil {
		t.Fatal(err)
	}
	ranWorkload := false
	backedUp := false
	w, cleanup, err := e.Cycle(reg, func(d *testbed.Deployment) error {
		if d.NodeCount() != 1 {
			t.Errorf("workload saw %d nodes", d.NodeCount())
		}
		ranWorkload = true
		return nil
	}, func() error { backedUp = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("cycle failed: %v", rep.Statuses)
	}
	if !ranWorkload || !backedUp {
		t.Error("workload/backup not executed")
	}
	if len(svc.Deployed) != 1 || svc.Deployed[0] != plantnet.Baseline {
		t.Errorf("service deploy saw %+v", svc.Deployed)
	}
	// Release task freed the reservation.
	if e.Testbed.Available("chifflot") != 8 {
		t.Error("nodes not released after cycle")
	}
}

func TestCycleSkipsBackupOnWorkloadFailure(t *testing.T) {
	e := paperExperiment()
	e.Layers = e.Layers[:1]
	e.Network = nil
	reg := NewRegistry()
	if err := reg.Register(&PlantNetService{}); err != nil {
		t.Fatal(err)
	}
	backedUp := false
	w, cleanup, err := e.Cycle(reg,
		func(d *testbed.Deployment) error { return errors.New("workload crashed") },
		func() error { backedUp = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if backedUp {
		t.Error("backup ran after workload failure")
	}
	if rep.Statuses["backup"] != workflow.SkippedUpstream {
		t.Errorf("backup status %v", rep.Statuses["backup"])
	}
	if rep.FirstError() == nil {
		t.Error("FirstError missing")
	}
	// Cleanup (deferred by caller) releases the nodes.
	cleanup()
	if e.Testbed.Available("chifflot") != 8 {
		t.Error("cleanup did not release nodes")
	}
}

func TestCycleWithoutBackupOrRegistry(t *testing.T) {
	e := paperExperiment()
	e.Network = nil
	w, cleanup, err := e.Cycle(nil, func(d *testbed.Deployment) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("cycle failed: %v", rep.Statuses)
	}
}

func TestCycleNeedsWorkload(t *testing.T) {
	e := paperExperiment()
	if _, _, err := e.Cycle(nil, nil, nil); err == nil {
		t.Error("nil workload accepted")
	}
}
