package core

import (
	"fmt"

	"e2clab/internal/plantnet"
	"e2clab/internal/rngutil"
	"e2clab/internal/testbed"
)

// PlantNetService is the user-defined E2Clab service for the Pl@ntNet
// Identification Engine — the service the paper's authors had to implement
// to support their application (Section V-C). Deploy validates the target
// nodes (the engine needs a GPU, hence chifflot) and parses the thread-pool
// environment.
type PlantNetService struct {
	// Deployed records each deployment's parsed configuration.
	Deployed []plantnet.PoolConfig
}

// Name implements Service.
func (s *PlantNetService) Name() string { return "plantnet_engine" }

// Deploy implements Service.
func (s *PlantNetService) Deploy(nodes []*testbed.Node, env map[string]string) error {
	if len(nodes) == 0 {
		return fmt.Errorf("plantnet service: no nodes")
	}
	for _, n := range nodes {
		if n.Spec.GPU == nil {
			return fmt.Errorf("plantnet service: node %s has no GPU (the Identification Engine requires one)", n.ID)
		}
	}
	cfg, err := PoolConfigFromEnv(env)
	if err != nil {
		return err
	}
	s.Deployed = append(s.Deployed, cfg)
	return nil
}

// PoolConfigFromEnv parses the Table II pool sizes from a service env.
func PoolConfigFromEnv(env map[string]string) (plantnet.PoolConfig, error) {
	get := func(k string, def int) (int, error) {
		v, ok := env[k]
		if !ok {
			return def, nil
		}
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			return 0, fmt.Errorf("plantnet service: bad %s=%q", k, v)
		}
		return n, nil
	}
	var cfg plantnet.PoolConfig
	var err error
	if cfg.HTTP, err = get("http", plantnet.Baseline.HTTP); err != nil {
		return cfg, err
	}
	if cfg.Download, err = get("download", plantnet.Baseline.Download); err != nil {
		return cfg, err
	}
	if cfg.Extract, err = get("extract", plantnet.Baseline.Extract); err != nil {
		return cfg, err
	}
	if cfg.Simsearch, err = get("simsearch", plantnet.Baseline.Simsearch); err != nil {
		return cfg, err
	}
	return cfg, cfg.Validate()
}

// PlantNetObjective builds the paper's UserResponseTime objective function:
// each model evaluation deploys the engine with the candidate thread-pool
// configuration (Equation 2 variable order), exercises it with `clients`
// simultaneous requests for the spec's duration and repetitions, and
// returns the pooled mean user response time.
func PlantNetObjective(clients int, seed int64) Objective {
	return func(ev *Evaluation) (float64, error) {
		cfg := plantnet.FromVector(ev.X)
		if err := cfg.Validate(); err != nil {
			return 0, err
		}
		// Derive the evaluation's seed from (root seed, index) so parallel
		// evaluations are independent yet reproducible.
		s := rngutil.NewSeeder(seed + int64(ev.Index)*7919)
		rep, err := plantnet.RunRepeated(plantnet.RunOptions{
			Pools:       cfg,
			Clients:     clients,
			Duration:    ev.Duration,
			MaxParallel: ev.RepeatParallelism,
			Seed:        s.Next(),
		}, ev.Repeat)
		if err != nil {
			return 0, err
		}
		return rep.UserResponseTime.Mean, nil
	}
}
