// Package core is the E2Clab facade: it wires the testbed, the
// layers-services scenario description, network emulation, user-defined
// services, monitoring, and — the contribution of the CLUSTER 2021 paper —
// the Optimization Manager that automates the reproducible optimization
// cycle (parallel deployment, simultaneous execution, asynchronous model
// optimization, reconfiguration) over the Edge-to-Cloud Continuum.
package core

import (
	"fmt"
	"sort"
	"sync"

	"e2clab/internal/netem"
	"e2clab/internal/testbed"
)

// Experiment is one E2Clab scenario: where services run (layers/services)
// and how layers communicate (network).
type Experiment struct {
	Name    string
	Testbed *testbed.Testbed
	Layers  []testbed.Layer
	Network *netem.Network
}

// Validate checks the scenario's internal consistency before deployment.
func (e *Experiment) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("core: experiment needs a name")
	}
	if e.Testbed == nil {
		return fmt.Errorf("core: experiment %q has no testbed", e.Name)
	}
	if len(e.Layers) == 0 {
		return fmt.Errorf("core: experiment %q has no layers", e.Name)
	}
	names := make([]string, 0, len(e.Layers))
	seen := map[string]bool{}
	for _, l := range e.Layers {
		if l.Name == "" {
			return fmt.Errorf("core: experiment %q has an unnamed layer", e.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("core: duplicate layer %q", l.Name)
		}
		seen[l.Name] = true
		names = append(names, l.Name)
		if len(l.Services) == 0 {
			return fmt.Errorf("core: layer %q has no services", l.Name)
		}
		for _, s := range l.Services {
			if e.Testbed.Cluster(s.Cluster) == nil {
				return fmt.Errorf("core: service %s/%s references unknown cluster %q", l.Name, s.Name, s.Cluster)
			}
		}
	}
	if e.Network != nil {
		if err := e.Network.Validate(names); err != nil {
			return err
		}
	}
	return nil
}

// Deploy validates and reserves testbed nodes for the whole scenario.
func (e *Experiment) Deploy() (*testbed.Deployment, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e.Testbed.Deploy(e.Layers)
}

// Service is a user-defined E2Clab service: "any system or a group of
// systems that provide a specific functionality or action in the scenario
// workflow". Users override Deploy to define the deployment logic — node
// distribution and software installation — exactly as the paper's Service
// class prescribes (Section V-C).
type Service interface {
	// Name is the service's registry key.
	Name() string
	// Deploy installs the service on its nodes with the given environment
	// (thread-pool sizes, etc. for the Pl@ntNet service).
	Deploy(nodes []*testbed.Node, env map[string]string) error
}

// Registry holds user-defined services (E2Clab's register mechanism).
type Registry struct {
	mu       sync.RWMutex
	services map[string]Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{services: make(map[string]Service)} }

// Register adds a service; re-registering a name is an error.
func (r *Registry) Register(s Service) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("core: cannot register unnamed service")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[s.Name()]; dup {
		return fmt.Errorf("core: service %q already registered", s.Name())
	}
	r.services[s.Name()] = s
	return nil
}

// Get looks a service up by name.
func (r *Registry) Get(name string) (Service, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.services[name]
	return s, ok
}

// Names lists registered services, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.services))
	for n := range r.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeployServices walks a deployment's placements and invokes each placed
// service's user-defined Deploy with its nodes and env.
func (r *Registry) DeployServices(e *Experiment, d *testbed.Deployment) error {
	for _, l := range e.Layers {
		for _, svc := range l.Services {
			impl, ok := r.Get(svc.Name)
			if !ok {
				return fmt.Errorf("core: no registered implementation for service %q", svc.Name)
			}
			nodes := d.Placement[l.Name+"/"+svc.Name]
			if err := impl.Deploy(nodes, svc.Env); err != nil {
				return fmt.Errorf("core: deploying %s: %w", svc.Name, err)
			}
		}
	}
	return nil
}
