package core

// Multi-objective helpers for the Figure 4 right-hand problem class
// ("minimizing communication costs and end-to-end latency" as a single
// multi-objective optimization problem). The Manager optimizes a scalar
// metric; multi-objective problems are handled by scalarizing with
// WeightedSum and/or by extracting the Pareto front from the evaluated
// points afterwards.

// WeightedSum returns a scalarized objective: sum_i w_i * f_i(x). All
// component objectives are assumed minimized.
func WeightedSum(weights []float64, objectives ...func(x []float64) float64) func(x []float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i, f := range objectives {
			w := 1.0
			if i < len(weights) {
				w = weights[i]
			}
			s += w * f(x)
		}
		return s
	}
}

// Dominates reports whether objective vector a Pareto-dominates b
// (minimization): a is no worse in every component and strictly better in
// at least one.
func Dominates(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront returns the indices of the non-dominated points among the
// given objective vectors (minimization), in input order.
func ParetoFront(points [][]float64) []int {
	var front []int
	for i, a := range points {
		dominated := false
		for j, b := range points {
			if i != j && Dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}
