// Package repro_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index). Each benchmark runs the corresponding experiment at a reduced
// duration and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction driver;
// cmd/experiments prints the full tables.
package repro_test

import (
	"fmt"
	"math"
	"testing"

	"e2clab/internal/bo"
	"e2clab/internal/core"
	"e2clab/internal/metaheur"
	"e2clab/internal/plantnet"
	"e2clab/internal/sensitivity"
	"e2clab/internal/space"
	"e2clab/internal/tune"
	"e2clab/internal/workload"
)

const benchDuration = 200 // simulated seconds per engine experiment

func engineRun(b *testing.B, cfg plantnet.PoolConfig, clients int, seed int64) *plantnet.Metrics {
	b.Helper()
	m, err := plantnet.Run(plantnet.RunOptions{
		Pools: cfg, Clients: clients, Duration: benchDuration, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable2Baseline exercises the production configuration of
// Table II at the 80-request workload.
func BenchmarkTable2Baseline(b *testing.B) {
	var resp float64
	for i := 0; i < b.N; i++ {
		resp = engineRun(b, plantnet.Baseline, 80, int64(i+1)).UserResponseTime.Mean
	}
	b.ReportMetric(resp, "resp_s")
}

// BenchmarkFig2UserGrowth regenerates the spring-peak user-growth trace.
func BenchmarkFig2UserGrowth(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		trace := workload.DefaultGrowthModel().Generate()
		_, peak = workload.PeakWeek(trace, 2021)
	}
	b.ReportMetric(peak, "peak_users_wk")
}

// BenchmarkFig3ResponseCurve sweeps the workload under the baseline
// configuration (the response-time curve of Figure 3); the reported metric
// is the response at 120 requests (paper: 3.86 s).
func BenchmarkFig3ResponseCurve(b *testing.B) {
	var at120 float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{40, 80, 120, 140} {
			m := engineRun(b, plantnet.Baseline, n, int64(i+1))
			if n == 120 {
				at120 = m.UserResponseTime.Mean
			}
		}
	}
	b.ReportMetric(at120, "resp120_s")
}

// BenchmarkTable3Optimization runs the Listing 1 Bayesian-optimization
// stack (ET + LHS + gp_hedge + ConcurrencyLimiter + ASHA) on the engine and
// reports the best response time found.
func BenchmarkTable3Optimization(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		m, err := core.NewManager(core.Spec{
			Problem: space.PlantNetProblem(),
			Search: core.SearchSpec{Algorithm: "skopt", BaseEstimator: "ET",
				NInitialPoints: 8, InitialPointGenerator: "lhs", AcqFunc: "gp_hedge"},
			NumSamples:    16,
			MaxConcurrent: 2,
			UseASHA:       true,
			Repeat:        1,
			Duration:      benchDuration,
			Seed:          int64(i + 42),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Optimize(core.PlantNetObjective(80, int64(i+42)))
		if err != nil {
			b.Fatal(err)
		}
		best = res.BestY
	}
	b.ReportMetric(best, "best_resp_s")
}

// BenchmarkFig8Workloads compares baseline vs preliminary optimum across
// the three paper workloads; the metric is the mean improvement.
func BenchmarkFig8Workloads(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		imp = 0
		for _, n := range []int{80, 120, 140} {
			base := engineRun(b, plantnet.Baseline, n, int64(i+1)).UserResponseTime.Mean
			pre := engineRun(b, plantnet.PreliminaryOptimum, n, int64(i+1)).UserResponseTime.Mean
			imp += (base - pre) / base * 100 / 3
		}
	}
	b.ReportMetric(imp, "improv_%")
}

// BenchmarkFig9ExtractSweep runs the OAT extract sweep (5..9) and reports
// the spread between the best and worst setting.
func BenchmarkFig9ExtractSweep(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for e := 5; e <= 9; e++ {
			cfg := plantnet.PoolConfig{HTTP: 54, Download: 54, Extract: e, Simsearch: 53}
			r := engineRun(b, cfg, 80, int64(i+1)).UserResponseTime.Mean
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "spread_s")
}

// BenchmarkFig10SimsearchSweep runs the OAT simsearch sweep (50..56).
func BenchmarkFig10SimsearchSweep(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = 0
		for s := 50; s <= 56; s++ {
			cfg := plantnet.PoolConfig{HTTP: 54, Download: 54, Extract: 7, Simsearch: s}
			mean += engineRun(b, cfg, 80, int64(i+1)).UserResponseTime.Mean / 7
		}
	}
	b.ReportMetric(mean, "mean_resp_s")
}

// BenchmarkTable4Configs measures all three configurations at workload 80.
func BenchmarkTable4Configs(b *testing.B) {
	var refined float64
	for i := 0; i < b.N; i++ {
		engineRun(b, plantnet.Baseline, 80, int64(i+1))
		engineRun(b, plantnet.PreliminaryOptimum, 80, int64(i+1))
		refined = engineRun(b, plantnet.RefinedOptimum, 80, int64(i+1)).UserResponseTime.Mean
	}
	b.ReportMetric(refined, "refined_resp_s")
}

// BenchmarkFig11AllConfigs runs the full three-configurations x
// three-workloads grid of Figure 11, including the OAT refinement step.
func BenchmarkFig11AllConfigs(b *testing.B) {
	p := space.PlantNetProblem()
	var refinedExtract float64
	for i := 0; i < b.N; i++ {
		fn := func(x []float64) float64 {
			m, err := plantnet.Run(plantnet.RunOptions{
				Pools: plantnet.FromVector(x), Clients: 80, Duration: benchDuration, Seed: int64(i + 3)})
			if err != nil {
				b.Fatal(err)
			}
			return m.UserResponseTime.Mean
		}
		refined, _, err := sensitivity.Refine(p.Space, plantnet.PreliminaryOptimum.Vector(), []string{"extract"}, 2, fn)
		if err != nil {
			b.Fatal(err)
		}
		refinedExtract = refined[3]
		for _, n := range []int{80, 120, 140} {
			engineRun(b, plantnet.FromVector(refined), n, int64(i+3))
		}
	}
	b.ReportMetric(refinedExtract, "refined_extract")
}

// BenchmarkFig4Continuum solves the multi-objective Edge-Fog-Cloud
// placement problem of Figure 4 (weighted-sum scalarization + Pareto
// front), as examples/continuum does.
func BenchmarkFig4Continuum(b *testing.B) {
	s := space.New(
		space.Categorical("preprocess", "edge", "fog", "cloud"),
		space.Categorical("inference", "edge", "fog", "cloud"),
		space.Categorical("aggregate", "edge", "fog", "cloud"),
	)
	speed := []float64{1, 6, 20}
	obj := func(x []float64) float64 {
		lat := 20/speed[int(x[1])] + 1/speed[int(x[0])] + 2/speed[int(x[2])]
		comm := 0.3*math.Abs(x[0]-x[1]) + 0.1*math.Abs(x[1]-x[2]) + 0.4*x[0]
		return lat + comm
	}
	var best float64
	for i := 0; i < b.N; i++ {
		res := metaheur.DE{Seed: int64(i + 1)}.Minimize(s, obj, 200)
		best = res.Y
	}
	b.ReportMetric(best, "scalar_obj")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationSurrogate compares surrogate families on the same
// optimization budget over a synthetic engine-like response surface.
func BenchmarkAblationSurrogate(b *testing.B) {
	surface := func(x []float64) float64 {
		return 2.4 + math.Pow(x[0]-54, 2)/800 + math.Pow(x[1]-54, 2)/3000 +
			math.Pow(x[2]-53, 2)/2500 + math.Pow(x[3]-6, 2)/40
	}
	for _, est := range []string{"ET", "RF", "GBRT", "GP"} {
		b.Run(est, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				opt, err := bo.New(space.PlantNetProblem().Space, bo.Config{
					BaseEstimator: est, NInitialPoints: 10, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 30; k++ {
					x := opt.Ask()
					opt.Tell(x, surface(x))
				}
				_, best = opt.Best()
			}
			b.ReportMetric(best, "best_obj")
		})
	}
}

// BenchmarkAblationAcquisition compares acquisition functions under the ET
// surrogate.
func BenchmarkAblationAcquisition(b *testing.B) {
	surface := func(x []float64) float64 {
		return math.Pow(x[0]-54, 2)/100 + math.Pow(x[3]-6, 2)
	}
	for _, acq := range []string{"EI", "PI", "LCB", "gp_hedge"} {
		b.Run(acq, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				opt, err := bo.New(space.PlantNetProblem().Space, bo.Config{
					AcqFunc: acq, NInitialPoints: 10, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 30; k++ {
					x := opt.Ask()
					opt.Tell(x, surface(x))
				}
				_, best = opt.Best()
			}
			b.ReportMetric(best, "best_obj")
		})
	}
}

// BenchmarkAblationSampler compares initial-design generators by the best
// value found in the pure space-filling phase.
func BenchmarkAblationSampler(b *testing.B) {
	surface := func(x []float64) float64 {
		return math.Pow(x[0]-54, 2)/100 + math.Pow(x[3]-6, 2)
	}
	for _, gen := range []string{"random", "lhs", "sobol", "halton"} {
		b.Run(gen, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				opt, err := bo.New(space.PlantNetProblem().Space, bo.Config{
					InitialPointGenerator: gen, NInitialPoints: 20, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 20; k++ {
					x := opt.Ask()
					opt.Tell(x, surface(x))
				}
				_, best = opt.Best()
			}
			b.ReportMetric(best, "best_obj")
		})
	}
}

// BenchmarkAblationParallelism quantifies the paper's claim that parallel
// asynchronous evaluation "reduces the application optimization time from
// days to hours": same budget, concurrency 1 vs 4, wall-clock compared via
// the framework's goroutine runner on a CPU-bound objective.
func BenchmarkAblationParallelism(b *testing.B) {
	for _, conc := range []int{1, 4} {
		b.Run(fmt.Sprintf("concurrent-%d", conc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := tune.Run(tune.RunConfig{
					Name: "par", Metric: "m", NumSamples: 8, MaxConcurrent: conc,
				}, &tune.RandomSearch{Space: space.PlantNetProblem().Space, Seed: int64(i + 1)},
					func(ctx *tune.Context, x []float64) (float64, error) {
						m, err := plantnet.Run(plantnet.RunOptions{
							Pools: plantnet.FromVector(x), Clients: 80,
							Duration: 100, Seed: int64(ctx.TrialID() + 1)})
						if err != nil {
							return 0, err
						}
						return m.UserResponseTime.Mean, nil
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationASHA compares FIFO vs AsyncHyperBand early stopping on
// an iterative objective: ASHA should complete the same trial budget in
// fewer total training iterations.
func BenchmarkAblationASHA(b *testing.B) {
	sp := space.New(space.Float("x", 0, 1))
	objective := func(ctx *tune.Context, x []float64) (float64, error) {
		v := x[0]
		for it := 1; it <= 32; it++ {
			if !ctx.Report(it, v) {
				return v, nil
			}
		}
		return v, nil
	}
	for _, name := range []string{"fifo", "asha"} {
		b.Run(name, func(b *testing.B) {
			var iters float64
			for i := 0; i < b.N; i++ {
				var sched tune.Scheduler
				if name == "asha" {
					sched = &tune.AsyncHyperBand{GracePeriod: 2, ReductionFactor: 2, MaxT: 32}
				}
				a, err := tune.Run(tune.RunConfig{
					Name: name, Metric: "m", NumSamples: 24, MaxConcurrent: 4, Scheduler: sched,
				}, &tune.RandomSearch{Space: sp, Seed: int64(i + 1)}, objective)
				if err != nil {
					b.Fatal(err)
				}
				iters = 0
				for _, t := range a.Trials {
					iters += float64(len(t.Reports))
				}
			}
			b.ReportMetric(iters, "train_iters")
		})
	}
}
