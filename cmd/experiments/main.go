// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV) from the in-repo reproduction. Each subcommand
// prints the same rows/series the paper reports; EXPERIMENTS.md records
// paper-vs-measured values.
//
// Usage:
//
//	experiments [flags] <fig2|fig3|table3|fig8|fig9|fig10|table4|fig11|listing1|ablation|suite|all>
//
// With -paper the harness uses the paper's full protocol (7 repetitions of
// 23 minutes per configuration); the default is a faster protocol (2 x 300s)
// that yields the same means within noise.
//
// The suite command goes beyond the paper's single 42-node deployment: it
// runs a scenario-suite campaign (internal/scenario) — topology sweeps,
// degraded networks, heterogeneous gateway mixes, fog placement, shaped
// workloads, fault-injection schedules (gateway churn, replica crashes,
// link flaps), and trace-driven load — on a bounded worker pool with a
// cross-scenario comparison table. Fixed-seed suite output is
// bit-identical at any -parallel level, and with -checkpoint an
// interrupted campaign resumes without re-running completed scenarios
// (changing a scenario's fault schedule invalidates its checkpoint entry).
// Use -suite to run a declarative JSON suite (see examples/suite) instead
// of the built-in standard campaign, and -netmodel simulated (or packet)
// to fold the network path into the event kernel (per-hop links, gateway
// queueing) instead of the closed-form netem cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"e2clab/internal/core"
	"e2clab/internal/export"
	"e2clab/internal/plantnet"
	"e2clab/internal/scenario"
	"e2clab/internal/sensitivity"
	"e2clab/internal/space"
	"e2clab/internal/workload"
)

var (
	flagDuration = flag.Float64("duration", 300, "seconds of simulated time per experiment")
	flagRepeat   = flag.Int("repeat", 2, "repetitions per configuration")
	flagSeed     = flag.Int64("seed", 42, "root RNG seed")
	flagPaper    = flag.Bool("paper", false, "use the paper's full protocol (1380s x 7 repetitions)")
	flagCSV      = flag.String("csv", "", "directory to write CSV outputs (optional)")

	// suite command flags.
	flagSuite      = flag.String("suite", "", "declarative suite JSON (default: the built-in standard campaign)")
	flagParallel   = flag.Int("parallel", 0, "suite worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flagCheckpoint = flag.String("checkpoint", "", "suite checkpoint path for crash-safe resume (optional)")
	flagArchive    = flag.String("archive", "", "suite provenance archive directory (optional)")
	flagNetModel   = flag.String("netmodel", "", "network model for suite scenarios that don't set one: analytical (default), simulated (per-hop links with gateway queueing in the event kernel), or packet (simulated links with packetized TCP-like transport)")
)

func main() {
	flag.Parse()
	if *flagPaper {
		*flagDuration = 1380
		*flagRepeat = 7
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	cmds := map[string]func() error{
		"fig2":     fig2,
		"fig3":     fig3,
		"table3":   table3,
		"fig8":     fig8,
		"fig9":     fig9,
		"fig10":    fig10,
		"table4":   table4,
		"fig11":    fig11,
		"listing1": listing1,
		"ablation": ablation,
		"suite":    suite,
	}
	run := func(name string) {
		fmt.Printf("\n=== %s ===\n", name)
		if err := cmds[name](); err != nil {
			fmt.Fprintf(os.Stderr, "experiments %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if cmd == "all" {
		for _, name := range []string{"fig2", "fig3", "table3", "fig8", "fig9", "fig10", "table4", "fig11", "listing1", "ablation"} {
			run(name)
		}
		return
	}
	if _, ok := cmds[cmd]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		os.Exit(2)
	}
	run(cmd)
}

// measure runs one configuration under one workload with the shared
// protocol flags.
func measure(cfg plantnet.PoolConfig, clients int) (*plantnet.Repeated, error) {
	return plantnet.RunRepeated(plantnet.RunOptions{
		Pools:    cfg,
		Clients:  clients,
		Duration: *flagDuration,
		Seed:     *flagSeed,
	}, *flagRepeat)
}

func maybeCSV(t *export.Table, name string) error {
	if *flagCSV == "" {
		return nil
	}
	if err := os.MkdirAll(*flagCSV, 0o755); err != nil {
		return err
	}
	return t.WriteCSV(filepath.Join(*flagCSV, name+".csv"))
}

// fig2 regenerates the user-growth trace: exponential growth with spring
// peaks in May-June.
func fig2() error {
	trace := workload.DefaultGrowthModel().Generate()
	t := export.NewTable("Fig. 2 — new Pl@ntNet users (weekly model): spring peaks, exponential growth",
		"year", "peak week", "peak users/week", "year total")
	for y := 2015; y <= 2021; y++ {
		week, users := workload.PeakWeek(trace, y)
		t.AddRow(y, week, fmt.Sprintf("%.0f", users), fmt.Sprintf("%.0f", workload.YearTotal(trace, y)))
	}
	fmt.Print(t.String())
	return maybeCSV(t, "fig2")
}

// fig3 sweeps the number of simultaneous requests under the baseline
// configuration (paper: ~3.86 s at 120 requests; 4 s is the user limit).
func fig3() error {
	t := export.NewTable("Fig. 3 — user response time vs simultaneous requests (baseline config)",
		"requests", "response time (s)", "±std", "throughput (req/s)")
	for _, n := range []int{20, 40, 60, 80, 100, 120, 140, 160} {
		r, err := measure(plantnet.Baseline, n)
		if err != nil {
			return err
		}
		t.AddRow(n, r.UserResponseTime.Mean, r.UserResponseTime.StdDev, r.Throughput)
	}
	fmt.Print(t.String())
	fmt.Println("paper reference: 3.86 (±0.13) at 120 simultaneous requests")
	return maybeCSV(t, "fig3")
}

// table3 runs the Listing 1 Bayesian optimization on the engine and prints
// the baseline-vs-preliminary-optimum comparison.
func table3() error {
	found, evals, err := optimizeEngine()
	if err != nil {
		return err
	}
	foundCfg := plantnet.FromVector(found)
	base, err := measure(plantnet.Baseline, 80)
	if err != nil {
		return err
	}
	pre, err := measure(foundCfg, 80)
	if err != nil {
		return err
	}
	t := export.NewTable(fmt.Sprintf("Table III — baseline vs preliminary optimum (found in %d evaluations, workload 80)", evals),
		"thread pool", "baseline", "preliminary optimum")
	t.AddRow("HTTP", plantnet.Baseline.HTTP, foundCfg.HTTP)
	t.AddRow("Download", plantnet.Baseline.Download, foundCfg.Download)
	t.AddRow("Extract", plantnet.Baseline.Extract, foundCfg.Extract)
	t.AddRow("Simsearch", plantnet.Baseline.Simsearch, foundCfg.Simsearch)
	t.AddRow("User response time",
		fmt.Sprintf("%.3f (±%.4f)", base.UserResponseTime.Mean, base.UserResponseTime.StdDev),
		fmt.Sprintf("%.3f (±%.4f)", pre.UserResponseTime.Mean, pre.UserResponseTime.StdDev))
	fmt.Print(t.String())
	fmt.Println("paper reference: baseline 2.657 (±0.0914), preliminary 2.484 (±0.0912); found config 54/54/7/53")
	return maybeCSV(t, "table3")
}

// optimizeEngine runs the paper's optimization (Equation 2) with the
// Listing 1 stack against the simulated engine at the 80-request workload.
func optimizeEngine() ([]float64, int, error) {
	m, err := core.NewManager(core.Spec{
		Problem: space.PlantNetProblem(),
		Search: core.SearchSpec{Algorithm: "skopt", BaseEstimator: "ET",
			NInitialPoints: 10, InitialPointGenerator: "lhs", AcqFunc: "gp_hedge"},
		NumSamples:    24,
		MaxConcurrent: 2,
		UseASHA:       true,
		Repeat:        1,
		Duration:      *flagDuration,
		Seed:          *flagSeed,
	})
	if err != nil {
		return nil, 0, err
	}
	res, err := m.Optimize(core.PlantNetObjective(80, *flagSeed))
	if err != nil {
		return nil, 0, err
	}
	return res.Best, res.Summary.Evaluations, nil
}

// fig8 compares baseline vs preliminary optimum across the three workloads.
func fig8() error {
	t := export.NewTable("Fig. 8 — user response time: baseline vs preliminary optimum",
		"requests", "baseline (s)", "preliminary (s)", "improvement")
	for _, n := range []int{80, 120, 140} {
		b, err := measure(plantnet.Baseline, n)
		if err != nil {
			return err
		}
		p, err := measure(plantnet.PreliminaryOptimum, n)
		if err != nil {
			return err
		}
		imp := (b.UserResponseTime.Mean - p.UserResponseTime.Mean) / b.UserResponseTime.Mean * 100
		t.AddRow(n, b.UserResponseTime.Mean, p.UserResponseTime.Mean, fmt.Sprintf("%.1f%%", imp))
	}
	fmt.Print(t.String())
	fmt.Println("paper reference: improvements 6.9%, 2.2%, 6.7% at 80/120/140")
	return maybeCSV(t, "fig8")
}

// fig9 is the OAT sweep of the extract pool (±2 around the preliminary
// optimum) with the resource-usage panels a-g.
func fig9() error {
	t := export.NewTable("Fig. 9 — impact of extract thread pool (OAT, workload 80)",
		"extract", "resp (s)", "wait-extract (s)", "extract (s)", "simsearch (s)",
		"CPU", "GPU mem (GB)", "sys mem (GB)", "GPU power (W)", "extract busy", "simsearch busy")
	for e := 5; e <= 9; e++ {
		cfg := plantnet.PoolConfig{HTTP: 54, Download: 54, Extract: e, Simsearch: 53}
		r, err := measure(cfg, 80)
		if err != nil {
			return err
		}
		m := r.Runs[0]
		t.AddRow(e, r.UserResponseTime.Mean,
			m.TaskTimes["wait-extract"].Mean, m.TaskTimes["extract"].Mean, m.TaskTimes["simsearch"].Mean,
			fmt.Sprintf("%.0f%%", m.CPUUtil.Mean*100), m.GPUMemGB, m.SysMemGB,
			fmt.Sprintf("%.0f", m.GPUPowerW.Mean),
			fmt.Sprintf("%.0f%%", m.ExtractBusy.Mean*100), fmt.Sprintf("%.0f%%", m.SimsearchBusy.Mean*100))
	}
	fmt.Print(t.String())
	fmt.Println("paper reference: minimum at extract=6 (8.5% below 7); CPU 100% at 8-9;")
	fmt.Println("GPU memory grows with pool size; GPU power draw between 50 and 80 W")
	return maybeCSV(t, "fig9")
}

// fig10 is the OAT sweep of the simsearch pool (around the preliminary
// optimum).
func fig10() error {
	t := export.NewTable("Fig. 10 — impact of simsearch thread pool (OAT, workload 80)",
		"simsearch", "resp (s)", "wait-simsearch (s)", "simsearch (s)", "simsearch busy", "extract busy")
	for s := 50; s <= 56; s++ {
		cfg := plantnet.PoolConfig{HTTP: 54, Download: 54, Extract: 7, Simsearch: s}
		r, err := measure(cfg, 80)
		if err != nil {
			return err
		}
		m := r.Runs[0]
		t.AddRow(s, r.UserResponseTime.Mean,
			m.TaskTimes["wait-simsearch"].Mean, m.TaskTimes["simsearch"].Mean,
			fmt.Sprintf("%.0f%%", m.SimsearchBusy.Mean*100), fmt.Sprintf("%.0f%%", m.ExtractBusy.Mean*100))
	}
	fmt.Print(t.String())
	fmt.Println("paper reference: 55 threads ~4% below 53; our model is flat here (see EXPERIMENTS.md)")
	return maybeCSV(t, "fig10")
}

// table4 compares the three configurations at the 80-request workload.
func table4() error {
	t := export.NewTable("Table IV — the three Pl@ntNet configurations (workload 80)",
		"thread pool", "baseline", "preliminary", "refined")
	cfgs := []plantnet.PoolConfig{plantnet.Baseline, plantnet.PreliminaryOptimum, plantnet.RefinedOptimum}
	t.AddRow("HTTP", cfgs[0].HTTP, cfgs[1].HTTP, cfgs[2].HTTP)
	t.AddRow("Download", cfgs[0].Download, cfgs[1].Download, cfgs[2].Download)
	t.AddRow("Extract", cfgs[0].Extract, cfgs[1].Extract, cfgs[2].Extract)
	t.AddRow("Simsearch", cfgs[0].Simsearch, cfgs[1].Simsearch, cfgs[2].Simsearch)
	row := []any{"User response time"}
	for _, c := range cfgs {
		r, err := measure(c, 80)
		if err != nil {
			return err
		}
		row = append(row, fmt.Sprintf("%.3f (±%.4f)", r.UserResponseTime.Mean, r.UserResponseTime.StdDev))
	}
	t.AddRow(row...)
	fmt.Print(t.String())
	fmt.Println("paper reference: 2.657 (±0.0914) / 2.484 (±0.0912) / 2.476 (±0.0826)")
	return maybeCSV(t, "table4")
}

// fig11 compares the three configurations across all workloads, plus the
// OAT refinement run that derives the refined optimum (Section IV-C).
func fig11() error {
	// First show the Refine() protocol reaching extract=6 from the
	// preliminary optimum.
	p := space.PlantNetProblem()
	fn := func(x []float64) float64 {
		r, err := measure(plantnet.FromVector(x), 80)
		if err != nil {
			return 99
		}
		return r.UserResponseTime.Mean
	}
	refined, _, err := sensitivity.Refine(p.Space, plantnet.PreliminaryOptimum.Vector(), []string{"extract"}, 2, fn)
	if err != nil {
		return err
	}
	fmt.Printf("OAT refinement from preliminary optimum: extract %d -> %d\n",
		plantnet.PreliminaryOptimum.Extract, int(refined[3]))

	t := export.NewTable("Fig. 11 — user response time: baseline vs optimums",
		"requests", "baseline (s)", "preliminary (s)", "refined (s)", "refined vs baseline")
	for _, n := range []int{80, 120, 140} {
		b, err := measure(plantnet.Baseline, n)
		if err != nil {
			return err
		}
		pr, err := measure(plantnet.PreliminaryOptimum, n)
		if err != nil {
			return err
		}
		rf, err := measure(plantnet.RefinedOptimum, n)
		if err != nil {
			return err
		}
		imp := (b.UserResponseTime.Mean - rf.UserResponseTime.Mean) / b.UserResponseTime.Mean * 100
		t.AddRow(n, b.UserResponseTime.Mean, pr.UserResponseTime.Mean, rf.UserResponseTime.Mean,
			fmt.Sprintf("%.1f%%", imp))
	}
	fmt.Print(t.String())
	fmt.Println("paper reference: refined vs baseline 7.2%, 6.3%, 9.8% at 80/120/140")
	return maybeCSV(t, "fig11")
}

// ablation compares this repo's design choices on the real engine model:
// surrogate families at a fixed evaluation budget, and single- vs
// multi-replica deployments (the §V-B scalability potential).
func ablation() error {
	budget := 16
	t := export.NewTable(fmt.Sprintf("ablation — surrogate families on the engine (budget %d evaluations, workload 80)", budget),
		"estimator", "best resp (s)", "best config")
	for _, est := range []string{"ET", "RF", "GBRT", "GP"} {
		m, err := core.NewManager(core.Spec{
			Problem: space.PlantNetProblem(),
			Search: core.SearchSpec{Algorithm: "skopt", BaseEstimator: est,
				NInitialPoints: 8, InitialPointGenerator: "lhs", AcqFunc: "gp_hedge"},
			NumSamples:    budget,
			MaxConcurrent: 2,
			Repeat:        1,
			Duration:      *flagDuration,
			Seed:          *flagSeed,
		})
		if err != nil {
			return err
		}
		res, err := m.Optimize(core.PlantNetObjective(80, *flagSeed))
		if err != nil {
			return err
		}
		t.AddRow(est, res.BestY, space.PlantNetProblem().Space.Format(res.Best))
	}
	fmt.Print(t.String())

	r := export.NewTable("\nablation — engine replicas under a 160-request workload",
		"replicas", "resp (s)", "throughput (req/s)")
	for _, reps := range []int{1, 2, 4} {
		m, err := plantnet.Run(plantnet.RunOptions{
			Pools: plantnet.RefinedOptimum, Clients: 160, Replicas: reps,
			Duration: *flagDuration, Seed: *flagSeed})
		if err != nil {
			return err
		}
		r.AddRow(reps, m.UserResponseTime.Mean, m.Throughput)
	}
	fmt.Print(r.String())
	if err := maybeCSV(t, "ablation_surrogates"); err != nil {
		return err
	}
	return maybeCSV(r, "ablation_replicas")
}

// suite runs a scenario-suite campaign: the built-in standard suite
// (internal/scenario.StandardSuite) or a declarative JSON suite given with
// -suite, on a bounded worker pool with optional checkpoint/resume and
// provenance archiving. The comparison table is bit-identical for a fixed
// seed at any parallelism.
func suite() error {
	var s scenario.Suite
	if *flagSuite != "" {
		loaded, err := scenario.LoadSuite(*flagSuite)
		if err != nil {
			return err
		}
		s = *loaded
		if s.Seed == 0 {
			s.Seed = *flagSeed
		}
		if s.DurationSeconds <= 0 {
			s.DurationSeconds = *flagDuration
		}
		if s.Repeats <= 0 {
			s.Repeats = *flagRepeat
		}
	} else {
		s = scenario.StandardSuite(*flagDuration, *flagRepeat, *flagSeed)
	}
	if *flagNetModel != "" {
		// Suite-level default; scenarios with their own network_model keep
		// it. The resolved value is fingerprinted, so flipping the flag
		// between runs of a checkpointed campaign re-runs the affected
		// scenarios instead of mixing models.
		s.NetworkModel = *flagNetModel
	}
	total := len(s.Scenarios)
	sr, err := scenario.RunSuite(s, scenario.Options{
		Parallel:       *flagParallel,
		CheckpointPath: *flagCheckpoint,
		ArchiveDir:     *flagArchive,
		Logger: func(event string, index int, name string) {
			fmt.Fprintf(os.Stderr, "suite: [%d/%d] %s %s\n", index+1, total, name, event)
		},
	})
	if err != nil {
		return err
	}
	t := scenario.ComparisonTable(sr)
	fmt.Print(t.String())
	if sr.Resumed > 0 {
		fmt.Printf("(%d scenario(s) resumed from checkpoint, %d executed)\n", sr.Resumed, sr.Executed)
	}
	failed := 0
	for i, e := range sr.Errs {
		if e != nil {
			failed++
			fmt.Fprintf(os.Stderr, "suite: scenario %d failed: %v\n", i, e)
		}
	}
	if err := maybeCSV(t, "suite"); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed", failed, total)
	}
	return nil
}

// listing1 runs the complete user-facing optimization of Listing 1 with the
// archive enabled and prints the Phase III summary.
func listing1() error {
	dir, err := os.MkdirTemp("", "e2clab-listing1-*")
	if err != nil {
		return err
	}
	m, err := core.NewManager(core.Spec{
		Problem: space.PlantNetProblem(),
		Search: core.SearchSpec{Algorithm: "skopt", BaseEstimator: "ET",
			NInitialPoints: 10, InitialPointGenerator: "lhs", AcqFunc: "gp_hedge"},
		NumSamples:    10, // num_samples=10 as in Listing 1
		MaxConcurrent: 2,  // ConcurrencyLimiter(max_concurrent=2)
		UseASHA:       true,
		Repeat:        1,
		Duration:      *flagDuration,
		Seed:          *flagSeed,
		ArchiveDir:    dir,
	})
	if err != nil {
		return err
	}
	res, err := m.Optimize(core.PlantNetObjective(80, *flagSeed))
	if err != nil {
		return err
	}
	fmt.Printf("Listing 1 run: best %s -> user_resp_time %.3f s\n",
		space.PlantNetProblem().Space.Format(res.Best), res.BestY)
	fmt.Printf("Phase III archive: %s (summary.json + %d optimization_* directories)\n",
		dir, res.Summary.Evaluations)
	return nil
}
