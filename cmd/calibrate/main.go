// Command calibrate probes the Pl@ntNet engine model against the paper's
// anchor measurements. It exists for model development: after changing
// internal/plantnet/calibration.go, run this to see where the model lands
// on every anchored quantity.
//
//	go run ./cmd/calibrate [-duration 600]
package main

import (
	"flag"
	"fmt"

	"e2clab/internal/export"
	"e2clab/internal/plantnet"
)

var flagDuration = flag.Float64("duration", 600, "simulated seconds per probe")

func run(cfg plantnet.PoolConfig, n int) *plantnet.Metrics {
	m, err := plantnet.Run(plantnet.RunOptions{Pools: cfg, Clients: n, Duration: *flagDuration, Seed: 42})
	if err != nil {
		panic(err)
	}
	return m
}

func main() {
	flag.Parse()

	t := export.NewTable("anchors: user response time (paper values in parentheses)",
		"workload", "baseline", "preliminary", "refined")
	refs := map[int][3]string{
		80:  {"(2.657)", "(2.484)", "(2.476)"},
		120: {"(3.86)", "", ""},
		140: {"", "", ""},
	}
	for _, n := range []int{80, 120, 140} {
		b, p, r := run(plantnet.Baseline, n), run(plantnet.PreliminaryOptimum, n), run(plantnet.RefinedOptimum, n)
		t.AddRow(n,
			fmt.Sprintf("%.3f %s", b.UserResponseTime.Mean, refs[n][0]),
			fmt.Sprintf("%.3f %s", p.UserResponseTime.Mean, refs[n][1]),
			fmt.Sprintf("%.3f %s", r.UserResponseTime.Mean, refs[n][2]))
	}
	fmt.Print(t.String())

	s := export.NewTable("\nextract sweep @ h=d=54 ss=53 N=80 (paper: minimum at 6; CPU 100% at 8-9)",
		"extract", "resp", "thr", "cpu", "exBusy", "ssBusy", "ssTime", "waitEx", "exTime")
	for e := 5; e <= 9; e++ {
		cfg := plantnet.PoolConfig{HTTP: 54, Download: 54, Extract: e, Simsearch: 53}
		m := run(cfg, 80)
		s.AddRow(e, m.UserResponseTime.Mean, fmt.Sprintf("%.1f", m.Throughput),
			fmt.Sprintf("%.2f", m.CPUUtil.Mean), fmt.Sprintf("%.2f", m.ExtractBusy.Mean),
			fmt.Sprintf("%.2f", m.SimsearchBusy.Mean),
			m.TaskTimes["simsearch"].Mean, m.TaskTimes["wait-extract"].Mean, m.TaskTimes["extract"].Mean)
	}
	fmt.Print(s.String())
}
