// Command e2clab is the CLI of the reproduction, mirroring the workflow of
// the extended E2Clab framework:
//
//	e2clab deploy
//	    validate and deploy the paper's 42-node layers-services scenario
//	    on the Grid'5000 testbed model.
//
//	e2clab optimize [--repeat N] [--duration S] [--workload W] [--samples K] <backup_dir>
//	    run the user-defined optimization of Listing 1 (SkOpt search with
//	    Extra Trees, LHS initial design, gp_hedge acquisition, concurrency
//	    limiter and ASHA) against the Pl@ntNet Identification Engine and
//	    archive the reproducibility artifacts under <backup_dir>. The
//	    paper's repeatability command is
//	    `e2clab optimize --repeat 6 --duration 1380 <backup> <artifacts>`.
//
//	e2clab report <backup_dir>
//	    print the Phase III summary of computations from a previous run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"e2clab/internal/config"
	"e2clab/internal/core"
	"e2clab/internal/export"
	"e2clab/internal/netem"
	"e2clab/internal/provenance"
	"e2clab/internal/space"
	"e2clab/internal/testbed"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "deploy":
		err = deploy(os.Args[2:])
	case "optimize":
		err = optimize(os.Args[2:])
	case "report":
		err = report(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "e2clab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "e2clab: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: e2clab <command> [args]

commands:
  deploy [scenario.json]           deploy a scenario (default: the paper's 42 nodes)
  optimize [flags] <backup_dir>    run the Listing 1 optimization
  report <backup_dir>              print a Phase III summary
  verify [--max N] <backup_dir>    re-run archived evaluations and check
                                   they reproduce bit-for-bit

optimize flags:
  --conf FILE     optimizer configuration file (overrides the flags below)
  --repeat N      repetitions per evaluation (default 1; paper uses 6+1)
  --duration S    seconds per experiment (default 300; paper uses 1380)
  --workload W    simultaneous requests (default 80)
  --samples K     configurations to evaluate (default 10, as in Listing 1)
  --concurrent C  parallel evaluations (default 2, as in Listing 1)
  --seed S        RNG seed (default 42)`)
}

// deploy builds a scenario — from a configuration file when given, else
// the built-in Section IV scenario — and prints the placement.
func deploy(args []string) error {
	if len(args) > 0 {
		scen, err := config.LoadScenario(args[0])
		if err != nil {
			return err
		}
		e, err := scen.Build(testbed.Grid5000())
		if err != nil {
			return err
		}
		return printDeployment(e)
	}
	e := &core.Experiment{
		Name:    "plantnet",
		Testbed: testbed.Grid5000(),
		Layers: []testbed.Layer{
			{Name: "cloud", Services: []testbed.Service{
				{Name: "plantnet_engine", Quantity: 2, Cluster: "chifflot",
					Env: map[string]string{"http": "40", "download": "40", "extract": "7", "simsearch": "40"}},
			}},
			{Name: "edge", Services: []testbed.Service{
				{Name: "client_chiclet", Quantity: 8, Cluster: "chiclet"},
				{Name: "client_chetemi", Quantity: 15, Cluster: "chetemi"},
				{Name: "client_chifflet", Quantity: 8, Cluster: "chifflet"},
				{Name: "client_gros", Quantity: 9, Cluster: "gros"},
			}},
		},
		Network: netem.New(netem.Rule{Src: "edge", Dst: "cloud", DelayMS: 2, RateGbps: 10, Symmetric: true}),
	}
	return printDeployment(e)
}

func printDeployment(e *core.Experiment) error {
	d, err := e.Deploy()
	if err != nil {
		return err
	}
	defer d.ReleaseAll()
	t := export.NewTable(fmt.Sprintf("deployment %q: %d nodes", e.Name, d.NodeCount()),
		"layer/service", "nodes", "first node")
	for _, k := range d.Keys() {
		nodes := d.Placement[k]
		t.AddRow(k, len(nodes), nodes[0].ID)
	}
	fmt.Print(t.String())
	return nil
}

func optimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	conf := fs.String("conf", "", "optimizer configuration file")
	repeat := fs.Int("repeat", 1, "repetitions per evaluation")
	duration := fs.Float64("duration", 300, "seconds per experiment")
	clients := fs.Int("workload", 80, "simultaneous requests")
	samples := fs.Int("samples", 10, "configurations to evaluate")
	concurrent := fs.Int("concurrent", 2, "parallel evaluations")
	repeatPar := fs.Int("repeat-parallel", 0, "worker pool per evaluation's repeats (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Int64("seed", 42, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backup := fs.Arg(0)
	if backup == "" {
		return fmt.Errorf("optimize: missing <backup_dir> argument")
	}
	var spec core.Spec
	if *conf != "" {
		oc, err := config.LoadOptimizer(*conf)
		if err != nil {
			return err
		}
		spec, err = oc.BuildSpec()
		if err != nil {
			return err
		}
	} else {
		spec = core.Spec{
			Problem: space.PlantNetProblem(),
			Search: core.SearchSpec{Algorithm: "skopt", BaseEstimator: "ET",
				NInitialPoints: min(*samples, 10), InitialPointGenerator: "lhs", AcqFunc: "gp_hedge"},
			NumSamples:        *samples,
			MaxConcurrent:     *concurrent,
			UseASHA:           true,
			Repeat:            *repeat,
			RepeatParallelism: *repeatPar,
			Duration:          *duration,
			Seed:              *seed,
		}
	}
	spec.ArchiveDir = backup
	m, err := core.NewManager(spec)
	if err != nil {
		return err
	}
	eff := m.Spec()
	fmt.Printf("optimizing %s: %d samples, %d concurrent, %d x %.0fs per evaluation\n",
		eff.Problem.Name, eff.NumSamples, eff.MaxConcurrent, eff.Repeat, eff.Duration)
	res, err := m.Optimize(core.PlantNetObjective(*clients, eff.Seed))
	if err != nil {
		return err
	}
	fmt.Printf("best configuration: %s\n", eff.Problem.Space.Format(res.Best))
	fmt.Printf("best user_resp_time: %.3f s over %d evaluations\n", res.BestY, res.Summary.Evaluations)
	fmt.Printf("archive: %s\n", backup)
	return nil
}

func report(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("report: missing <backup_dir> argument")
	}
	a, err := provenance.NewArchive(args[0])
	if err != nil {
		return err
	}
	s, err := a.ReadSummary()
	if err != nil {
		return err
	}
	fmt.Printf("experiment: %s\nobjective:  %s (%s)\n", s.Name, s.Objective, s.Mode)
	fmt.Printf("search:     %s %v (sampler %s, scheduler %s)\n", s.SearchAlg, s.Hyperparams, s.SampleMethod, s.Scheduler)
	fmt.Printf("protocol:   %d samples, %d concurrent, seed %d\n", s.NumSamples, s.MaxConcurrent, s.Seed)
	keys := make([]string, 0, len(s.BestConfig))
	for k := range s.BestConfig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("best:       ")
	for _, k := range keys {
		fmt.Printf("%s=%g ", k, s.BestConfig[k])
	}
	fmt.Printf("-> %s %.4f\n", s.Objective, s.BestObjective)
	evals, err := a.Evaluations()
	if err != nil {
		return err
	}
	fmt.Printf("archived evaluations: %d\n", len(evals))
	return nil
}

// verify re-executes archived evaluations with their original seeds and
// protocol and checks the metric reproduces exactly — the repeatability
// the paper's Phase III archive promises ("one may repeat those
// experiments easily").
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	maxEvals := fs.Int("max", 3, "number of archived evaluations to re-run")
	clients := fs.Int("workload", 80, "simultaneous requests used by the original run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.Arg(0) == "" {
		return fmt.Errorf("verify: missing <backup_dir> argument")
	}
	a, err := provenance.NewArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	s, err := a.ReadSummary()
	if err != nil {
		return err
	}
	evals, err := a.Evaluations()
	if err != nil {
		return err
	}
	if len(evals) == 0 {
		return fmt.Errorf("verify: archive holds no evaluations")
	}
	obj := core.PlantNetObjective(*clients, s.Seed)
	n := *maxEvals
	if n > len(evals) {
		n = len(evals)
	}
	fmt.Printf("re-running %d of %d archived evaluations (seed %d, %d x %.0fs)\n",
		n, len(evals), s.Seed, s.Repeat, s.Duration)
	failures := 0
	for _, rec := range evals[:n] {
		x := make([]float64, 4)
		for i, name := range []string{"http", "download", "simsearch", "extract"} {
			v, ok := rec.Config[name]
			if !ok {
				return fmt.Errorf("verify: evaluation %d misses variable %q", rec.Index, name)
			}
			x[i] = v
		}
		got, err := obj(&core.Evaluation{Index: rec.Index, X: x, Repeat: s.Repeat, RepeatParallelism: s.RepeatParallelism, Duration: s.Duration})
		if err != nil {
			return err
		}
		status := "OK"
		if got != rec.Objective {
			status = fmt.Sprintf("MISMATCH (got %.6f)", got)
			failures++
		}
		fmt.Printf("  eval %04d  %-45s %s = %.6f  %s\n",
			rec.Index, space.PlantNetProblem().Space.Format(x), rec.Metric, rec.Objective, status)
	}
	if failures > 0 {
		return fmt.Errorf("verify: %d of %d evaluations did not reproduce", failures, n)
	}
	fmt.Println("all re-run evaluations reproduced exactly")
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
