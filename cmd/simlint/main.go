// Command simlint runs the repository's static-analysis suite
// (internal/lint): the determinism, RNG-discipline (seeding and
// cross-goroutine stream sharing), zero-alloc (per function and closed
// over the static call graph), kernel-synchronization, checkpoint-schema,
// goroutine-spawn, and directive-hygiene / stale-suppression contracts
// that back the ROADMAP standing invariants.
//
// Usage:
//
//	simlint [-C dir] [-checks list] [-json]
//
// simlint exits 0 when the tree is clean, 1 when findings exist, and 2 when
// the analysis itself could not run (e.g. the tree does not build). It is a
// tier-1 gate: scripts/verify.sh and CI run it on every change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"e2clab/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root to analyze")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array for tooling")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all of "+knownChecks()+")")
	flag.Parse()

	cfg := lint.Config{Dir: *dir}
	if *checks != "" {
		cfg.Checks = map[string]bool{}
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if !lint.KnownChecks[c] {
				fmt.Fprintf(os.Stderr, "simlint: unknown check %q (known: %s)\n", c, knownChecks())
				os.Exit(2)
			}
			cfg.Checks[c] = true
		}
	}

	diags, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func knownChecks() string {
	names := make([]string, 0, len(lint.KnownChecks))
	for c := range lint.KnownChecks {
		names = append(names, c)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
