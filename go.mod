module e2clab

go 1.24.0
